package eval

import (
	"fmt"
	"math/rand"
	"time"

	"approxcache/internal/battery"
	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
	"approxcache/internal/trace"
	"approxcache/internal/vision"
)

// E9AdaptiveLSH compares the plain hyperplane index against the
// adaptive (data-centered, self-rebalancing) index on real image
// descriptors, which are all-positive and therefore skew uncentered
// hyperplane buckets.
func E9AdaptiveLSH(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	// Descriptor-like vectors from actual rendered frames.
	classes, err := vision.NewClassSet(8, 48, 48, s.Seed)
	if err != nil {
		return Report{}, err
	}
	ex := feature.DefaultExtractor()
	rng := rand.New(rand.NewSource(s.Seed))
	items := s.Frames
	if items > 3000 {
		items = 3000
	}
	vecs := make([]feature.Vector, items)
	exact, err := lsh.NewExact(ex.Dim())
	if err != nil {
		return Report{}, err
	}
	for i := range vecs {
		im, err := classes.Render(i%8, vision.DefaultPerturbation(), rng)
		if err != nil {
			return Report{}, err
		}
		v, err := ex.Extract(im)
		if err != nil {
			return Report{}, err
		}
		vecs[i] = v
		if err := exact.Insert(lsh.ID(i), v); err != nil {
			return Report{}, err
		}
	}
	const queries = 150
	qs := make([]feature.Vector, queries)
	truth := make([]lsh.ID, queries)
	for i := range qs {
		im, err := classes.Render(i%8, vision.DefaultPerturbation(), rng)
		if err != nil {
			return Report{}, err
		}
		v, err := ex.Extract(im)
		if err != nil {
			return Report{}, err
		}
		qs[i] = v
		ns, err := exact.Nearest(v, 1)
		if err != nil {
			return Report{}, err
		}
		truth[i] = ns[0].ID
	}

	type candIndex interface {
		lsh.Index
		Candidates(feature.Vector) ([]lsh.ID, error)
		Stats() lsh.Stats
	}
	measure := func(idx candIndex) (recall float64, meanCand float64, st lsh.Stats, err error) {
		for i, v := range vecs {
			if err := idx.Insert(lsh.ID(i), v); err != nil {
				return 0, 0, lsh.Stats{}, err
			}
		}
		hits, cands := 0, 0
		for i, q := range qs {
			cs, err := idx.Candidates(q)
			if err != nil {
				return 0, 0, lsh.Stats{}, err
			}
			cands += len(cs)
			ns, err := idx.Nearest(q, 1)
			if err != nil {
				return 0, 0, lsh.Stats{}, err
			}
			if len(ns) > 0 && ns[0].ID == truth[i] {
				hits++
			}
		}
		return float64(hits) / queries, float64(cands) / queries, idx.Stats(), nil
	}

	plain, err := lsh.NewHyperplane(ex.Dim(), 12, 4, s.Seed)
	if err != nil {
		return Report{}, err
	}
	acfg := lsh.DefaultAdaptiveConfig(ex.Dim())
	acfg.Seed = s.Seed
	adaptive, err := lsh.NewAdaptive(acfg)
	if err != nil {
		return Report{}, err
	}

	report := Report{
		ID:      "E9",
		Title:   "Adaptive vs plain LSH on real image descriptors (all-positive vectors)",
		Headers: []string{"index", "recall@1", "mean-candidates", "buckets", "max-bucket-share", "rebuilds"},
		Notes: []string{
			"positive-orthant descriptors correlate hyperplane signs; centering on the data mean spreads buckets",
		},
	}
	pRecall, pCand, pStats, err := measure(plain)
	if err != nil {
		return Report{}, err
	}
	aRecall, aCand, aStats, err := measure(adaptive)
	if err != nil {
		return Report{}, err
	}
	share := func(st lsh.Stats) float64 {
		if st.Items == 0 {
			return 0
		}
		return float64(st.MaxBucket) / float64(st.Items)
	}
	report.Rows = append(report.Rows,
		[]string{"plain", fmtPct(pRecall), fmtF(pCand),
			fmt.Sprintf("%d", pStats.Buckets), fmtPct(share(pStats)), "0"},
		[]string{"adaptive", fmtPct(aRecall), fmtF(aCand),
			fmt.Sprintf("%d", aStats.Buckets), fmtPct(share(aStats)),
			fmt.Sprintf("%d", adaptive.Rebuilds())},
	)
	return report, nil
}

// E10ModelSweep measures the benefit across the model zoo: heavier
// models leave more latency and energy on the table for the cache to
// save.
func E10ModelSweep(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.StationaryHeavy(s.Frames, s.Seed)
	report := Report{
		ID:      "E10",
		Title:   "Benefit across the model zoo (stationary-heavy)",
		Headers: []string{"model", "no-cache mean", "approx mean", "reduction", "accuracy Δ", "energy ratio"},
		Notes: []string{
			"the relative saving is nearly model-independent: reuse removes a fixed fraction of inferences",
		},
	}
	for _, profile := range dnn.Profiles() {
		base, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec,
			Engine:  core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()},
			Profile: profile, Seed: s.Seed,
		})
		if err != nil {
			return Report{}, fmt.Errorf("%s base: %w", profile.Name, err)
		}
		apx, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec,
			Engine:  core.DefaultConfig(),
			Profile: profile, Seed: s.Seed,
		})
		if err != nil {
			return Report{}, fmt.Errorf("%s approx: %w", profile.Name, err)
		}
		bm, am := base.Latency().Mean(), apx.Latency().Mean()
		report.Rows = append(report.Rows, []string{
			profile.Name,
			fmtDur(bm),
			fmtDur(am),
			fmtPct(1 - float64(am)/float64(bm)),
			fmt.Sprintf("%+.1fpp", (apx.Accuracy()-base.Accuracy())*100),
			fmtPct(apx.EnergyMJ() / base.EnergyMJ()),
		})
	}
	return report, nil
}

// E11Robustness stresses approximate matching with the aggressive
// perturbation profile (more noise, bigger shifts, frequent occlusion).
func E11Robustness(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	report := Report{
		ID:    "E11",
		Title: "Robustness to frame degradation (default vs hard perturbation)",
		Headers: []string{"workload", "perturbation", "hit-rate", "accuracy",
			"no-cache accuracy", "mean-latency"},
		Notes: []string{
			"the no-cache column separates classifier degradation (hard frames confuse the DNN too) from cache-induced loss",
		},
	}
	for _, base := range []trace.Spec{
		trace.StationaryHeavy(s.Frames, s.Seed),
		trace.PanningSweep(s.Frames, s.Seed),
	} {
		for _, hard := range []bool{false, true} {
			spec := base
			spec.Hard = hard
			stats, _, err := RunSingle(DeviceConfig{
				Name: "main", Spec: spec, Engine: core.DefaultConfig(), Seed: s.Seed,
			})
			if err != nil {
				return Report{}, fmt.Errorf("%s hard=%v: %w", spec.Name, hard, err)
			}
			baseStats, _, err := RunSingle(DeviceConfig{
				Name: "main", Spec: spec,
				Engine: core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()},
				Seed:   s.Seed,
			})
			if err != nil {
				return Report{}, fmt.Errorf("%s hard=%v base: %w", spec.Name, hard, err)
			}
			label := "default"
			if hard {
				label = "hard"
			}
			report.Rows = append(report.Rows, []string{
				spec.Name,
				label,
				fmtPct(stats.HitRate()),
				fmtPct(stats.Accuracy()),
				fmtPct(baseStats.Accuracy()),
				fmtDur(stats.Latency().Mean()),
			})
		}
	}
	return report, nil
}

// E12LossyNetwork degrades the device-to-device links and measures how
// gracefully the peer gate fails: collaboration should fade, never
// hurt correctness.
func E12LossyNetwork(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	report := Report{
		ID:      "E12",
		Title:   "Peer reuse under degraded wireless links (walking-tour, 2 helpers)",
		Headers: []string{"loss", "peer-hits", "peer-queries", "hit-rate", "accuracy", "mean-latency"},
		Notes: []string{
			"loss starves the peer gate but the local gates keep serving; accuracy is unaffected",
		},
	}
	for _, loss := range []float64{0, 0.01, 0.05, 0.2, 0.5} {
		link := simnet.DefaultLinkProfile()
		link.LossProb = loss
		spec := trace.WalkingTour(s.Frames, s.Seed)
		spec.ClassSeed = s.Seed + 555
		spec.ClassSkew = 0.8
		cfgs := []DeviceConfig{{
			Name: "main", Spec: spec, Engine: core.DefaultConfig(), Seed: s.Seed,
		}}
		for i := 0; i < 2; i++ {
			helper := trace.WalkingTour(s.Frames, s.Seed+int64(i+1)*13)
			helper.ClassSeed = spec.ClassSeed
			helper.ClassSkew = spec.ClassSkew
			helper.Name = fmt.Sprintf("helper-%d", i)
			cfgs = append(cfgs, DeviceConfig{
				Name: helper.Name, Spec: helper, Engine: core.DefaultConfig(),
				Seed: s.Seed + int64(i+7),
			})
		}
		group, err := RunGroupLink(cfgs, s.Seed, link)
		if err != nil {
			return Report{}, fmt.Errorf("loss %v: %w", loss, err)
		}
		stats := group["main"]
		queries, hits := stats.PeerQueries()
		report.Rows = append(report.Rows, []string{
			fmtPct(loss),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%d", queries),
			fmtPct(stats.HitRate()),
			fmtPct(stats.Accuracy()),
			fmtDur(stats.Latency().Mean()),
		})
	}
	return report, nil
}

// E16DigestFilter measures the peer-coverage digest: with many peers
// holding disjoint content, the digest prefilter should cut per-query
// network traffic sharply while preserving nearly every hit.
func E16DigestFilter(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	const (
		dim      = 16
		peers    = 8
		perPeer  = 24
		queryCnt = 200
	)
	rng := rand.New(rand.NewSource(s.Seed))
	net, err := simnet.New(simnet.LinkProfile{Latency: 5 * time.Millisecond}, s.Seed)
	if err != nil {
		return Report{}, err
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	// Each peer owns one region of feature space.
	centers := make([]feature.Vector, peers)
	names := make([]string, peers)
	for i := range centers {
		c := make(feature.Vector, dim)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		c.Normalize()
		centers[i] = c
		names[i] = fmt.Sprintf("peer-%d", i)
		idx, err := lsh.NewExact(dim)
		if err != nil {
			return Report{}, err
		}
		st, err := cachestore.New(cachestore.Config{Capacity: 64}, idx, clock)
		if err != nil {
			return Report{}, err
		}
		for j := 0; j < perPeer; j++ {
			v := c.Clone()
			for d := range v {
				v[d] += rng.NormFloat64() * 0.03
			}
			v.Normalize()
			if _, err := st.Insert(v, fmt.Sprintf("class-%d", i), 0.9, "dnn", time.Millisecond); err != nil {
				return Report{}, err
			}
		}
		svc, err := p2p.NewService(p2p.DefaultServiceConfig(names[i]), st)
		if err != nil {
			return Report{}, err
		}
		if err := p2p.RegisterService(net, svc); err != nil {
			return Report{}, err
		}
	}
	queries := make([]feature.Vector, queryCnt)
	for i := range queries {
		v := centers[rng.Intn(peers)].Clone()
		for d := range v {
			v[d] += rng.NormFloat64() * 0.03
		}
		v.Normalize()
		queries[i] = v
	}

	run := func(useDigests bool) (hits, sent, skipped int, err error) {
		tr, err := p2p.NewSimnetTransport("main", net)
		if err != nil {
			return 0, 0, 0, err
		}
		client, err := p2p.NewClient(p2p.DefaultClientConfig(), tr)
		if err != nil {
			return 0, 0, 0, err
		}
		client.SetPeers(names)
		if useDigests {
			for _, peer := range names {
				if _, _, err := client.FetchDigest(peer); err != nil {
					return 0, 0, 0, err
				}
			}
		}
		before, _ := net.Stats()
		for _, q := range queries {
			_, _, found, err := client.Query(q)
			if err != nil {
				return 0, 0, 0, err
			}
			if found {
				hits++
			}
		}
		after, _ := net.Stats()
		return hits, after - before, client.SkippedQueries(), nil
	}
	report := Report{
		ID:      "E16",
		Title:   "Peer coverage digests (8 peers with disjoint content, 200 queries)",
		Headers: []string{"mode", "peer-hits", "messages", "queries-skipped"},
		Notes: []string{
			"digests let the requester skip peers that cannot answer; hits are preserved at a fraction of the traffic",
		},
	}
	for _, useDigests := range []bool{false, true} {
		hits, msgs, skipped, err := run(useDigests)
		if err != nil {
			return Report{}, err
		}
		mode := "no digests"
		if useDigests {
			mode = "with digests"
		}
		report.Rows = append(report.Rows, []string{
			mode,
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%d", msgs),
			fmt.Sprintf("%d", skipped),
		})
	}
	return report, nil
}

// E15LatencyCDF renders the latency distribution (figure-style series):
// one row per percentile, one column per system. The distribution is
// the cache's signature: a mass of sub-millisecond gate hits with an
// inference-cost tail whose height is the miss rate.
func E15LatencyCDF(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.StationaryHeavy(s.Frames, s.Seed)
	systems := []struct {
		name string
		cfg  core.Config
	}{
		{"no-cache", core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()}},
		{"naive-skip", core.Config{Mode: core.ModeNaiveSkip, SkipEvery: 20, Costs: core.DefaultCostModel()}},
		{"approx", core.DefaultConfig()},
	}
	report := Report{
		ID:      "E15",
		Title:   "Frame latency distribution (stationary-heavy)",
		Headers: []string{"percentile"},
		Notes: []string{
			"the cached systems are bimodal: sub-ms reuse for ~95% of frames, full inference cost in the tail",
		},
	}
	var all []*metrics.SessionStats
	for _, sys := range systems {
		report.Headers = append(report.Headers, sys.name)
		stats, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec, Engine: sys.cfg, Seed: s.Seed,
		})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", sys.name, err)
		}
		all = append(all, stats)
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 100} {
		row := []string{fmt.Sprintf("p%g", p)}
		for _, stats := range all {
			row = append(row, fmtDur(stats.Latency().Percentile(p)))
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// E14GateGrid completes the ablation story: every combination of the
// cheap gates on/off, plus the keyframe-library size, on one workload.
func E14GateGrid(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.HandheldMix(s.Frames, s.Seed)
	report := Report{
		ID:    "E14",
		Title: "Gate ablation grid (handheld-mix)",
		Headers: []string{"configuration", "imu", "video", "local", "dnn",
			"hit-rate", "accuracy", "mean-latency"},
		Notes: []string{
			"disabling a cheap gate shifts load to the next (more expensive) one; the full stack is fastest",
		},
	}
	type variant struct {
		name      string
		noIMU     bool
		noVideo   bool
		keyframes int
	}
	variants := []variant{
		{name: "full (4 keyframes)", keyframes: 4},
		{name: "single keyframe", keyframes: 1},
		{name: "no imu gate", noIMU: true, keyframes: 4},
		{name: "no video gate", noVideo: true, keyframes: 4},
		{name: "feature cache only", noIMU: true, noVideo: true, keyframes: 4},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.DisableIMUGate = v.noIMU
		cfg.DisableVideoGate = v.noVideo
		cfg.KeyframeCapacity = v.keyframes
		stats, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec, Engine: cfg, Seed: s.Seed,
		})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", v.name, err)
		}
		frames := float64(stats.Frames())
		counts := stats.CountBySource()
		report.Rows = append(report.Rows, []string{
			v.name,
			fmtPct(float64(counts[metrics.SourceIMU]) / frames),
			fmtPct(float64(counts[metrics.SourceVideo]) / frames),
			fmtPct(float64(counts[metrics.SourceLocal]) / frames),
			fmtPct(float64(counts[metrics.SourceDNN]) / frames),
			fmtPct(stats.HitRate()),
			fmtPct(stats.Accuracy()),
			fmtDur(stats.Latency().Mean()),
		})
	}
	return report, nil
}

// E13Battery translates per-frame energy into recognition time on one
// charge of a typical phone battery.
func E13Battery(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	spec := trace.StationaryHeavy(s.Frames, s.Seed)
	phone := battery.TypicalPhone()
	report := Report{
		ID:    "E13",
		Title: "Continuous recognition on one battery charge (typical phone, 15 fps)",
		Headers: []string{"system", "energy/frame (mJ)", "frames/charge", "runtime/charge",
			"vs no-cache"},
		Notes: []string{
			fmt.Sprintf("battery: %.0f mAh × %.2f V, %.0f%% budgeted to recognition",
				phone.CapacityMAh, phone.VoltageV, phone.RecognitionShare*100),
		},
	}
	var baseRuntime time.Duration
	type system struct {
		name string
		cfg  core.Config
	}
	for _, sys := range []system{
		{"no-cache", core.Config{Mode: core.ModeNoCache, Costs: core.DefaultCostModel()}},
		{"approx", core.DefaultConfig()},
	} {
		stats, _, err := RunSingle(DeviceConfig{
			Name: "main", Spec: spec, Engine: sys.cfg, Seed: s.Seed,
		})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", sys.name, err)
		}
		perFrame := stats.EnergyMJ() / float64(stats.Frames())
		runtime := phone.RuntimeOnCharge(perFrame, spec.FPS)
		if sys.name == "no-cache" {
			baseRuntime = runtime
		}
		gain := "-"
		if baseRuntime > 0 && sys.name != "no-cache" {
			gain = fmt.Sprintf("%.1f×", float64(runtime)/float64(baseRuntime))
		}
		report.Rows = append(report.Rows, []string{
			sys.name,
			fmtF(perFrame),
			fmt.Sprintf("%.0f", phone.FramesOnCharge(perFrame)),
			runtime.Round(time.Minute).String(),
			gain,
		})
	}
	return report, nil
}

// E17PeerChurn measures why live roster maintenance matters: peers come
// and go (devices leave the neighborhood), and a requester with a stale
// peer list keeps paying radio timeouts on dead peers. The maintained
// roster re-probes between rounds and sheds them.
func E17PeerChurn(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	const (
		dim     = 16
		peerCnt = 6
		rounds  = 12
		perRnd  = 20
	)
	rng := rand.New(rand.NewSource(s.Seed))
	// Shared content region: every live peer can answer every query.
	center := make(feature.Vector, dim)
	for d := range center {
		center[d] = rng.NormFloat64()
	}
	center.Normalize()
	queries := make([]feature.Vector, perRnd)
	for i := range queries {
		v := center.Clone()
		for d := range v {
			v[d] += rng.NormFloat64() * 0.03
		}
		v.Normalize()
		queries[i] = v
	}

	run := func(maintained bool) (meanCost time.Duration, hits int, err error) {
		net, err := simnet.New(simnet.LinkProfile{Latency: 5 * time.Millisecond}, s.Seed)
		if err != nil {
			return 0, 0, err
		}
		net.SetDeadCost(80 * time.Millisecond) // radio timeout on dead peers
		clock := simclock.NewVirtual(time.Unix(0, 0))
		names := make([]string, peerCnt)
		services := make([]*p2p.Service, peerCnt)
		register := func(i int) error {
			return p2p.RegisterService(net, services[i])
		}
		for i := 0; i < peerCnt; i++ {
			names[i] = fmt.Sprintf("peer-%d", i)
			idx, err := lsh.NewExact(dim)
			if err != nil {
				return 0, 0, err
			}
			st, err := cachestore.New(cachestore.Config{Capacity: 64}, idx, clock)
			if err != nil {
				return 0, 0, err
			}
			for j := 0; j < 16; j++ {
				v := center.Clone()
				for d := range v {
					v[d] += rng.NormFloat64() * 0.03
				}
				v.Normalize()
				if _, err := st.Insert(v, "class-0", 0.9, "dnn", time.Millisecond); err != nil {
					return 0, 0, err
				}
			}
			svc, err := p2p.NewService(p2p.DefaultServiceConfig(names[i]), st)
			if err != nil {
				return 0, 0, err
			}
			services[i] = svc
			if err := register(i); err != nil {
				return 0, 0, err
			}
		}
		tr, err := p2p.NewSimnetTransport("main", net)
		if err != nil {
			return 0, 0, err
		}
		// The breaker is disabled here so the experiment isolates what
		// roster maintenance alone buys; the resilience layer's own
		// effect is measured by E18.
		ccfg := p2p.DefaultClientConfig()
		ccfg.Breaker.Disabled = true
		client, err := p2p.NewClient(ccfg, tr)
		if err != nil {
			return 0, 0, err
		}
		client.SetPeers(names)
		roster, err := p2p.NewRoster("main", client, clock)
		if err != nil {
			return 0, 0, err
		}
		roster.Add(names...)

		var total time.Duration
		n := 0
		down := -1
		for round := 0; round < rounds; round++ {
			// Churn: the previous casualty returns, a new one leaves.
			if down >= 0 {
				if err := register(down); err != nil {
					return 0, 0, err
				}
			}
			down = round % peerCnt
			net.Unregister(simnet.NodeID(names[down]))
			if maintained {
				roster.ApplyBest(0)
			}
			for _, q := range queries {
				_, cost, found, err := client.Query(q)
				if err != nil {
					return 0, 0, err
				}
				if found {
					hits++
				}
				total += cost
				n++
			}
		}
		return total / time.Duration(n), hits, nil
	}

	report := Report{
		ID:      "E17",
		Title:   "Roster maintenance under peer churn (6 peers, 1 down per round, 80 ms dead-peer timeout)",
		Headers: []string{"peer list", "mean query cost", "peer-hits"},
		Notes: []string{
			"a static peer list keeps paying the dead-peer timeout every query; a maintained roster sheds it",
		},
	}
	for _, maintained := range []bool{false, true} {
		mean, hits, err := run(maintained)
		if err != nil {
			return Report{}, err
		}
		mode := "static"
		if maintained {
			mode = "maintained roster"
		}
		report.Rows = append(report.Rows, []string{
			mode,
			fmtDur(mean),
			fmt.Sprintf("%d", hits),
		})
	}
	return report, nil
}

// E18ChaosResilience crashes every peer mid-session and heals them
// later, comparing the guarded client (breaker + per-frame budget)
// against a fully unguarded one on the crash-window latency. The
// bound the resilience layer must meet: crash-window mean within 10%
// of the no-peers baseline.
func E18ChaosResilience(s Scale) (Report, error) {
	if err := s.validate(); err != nil {
		return Report{}, err
	}
	frames := s.Frames
	if frames < 30 {
		frames = 30
	}

	report := Report{
		ID: "E18",
		Title: fmt.Sprintf(
			"Chaos resilience: all peers crash 40%% in, heal 70%% in (%d frames, 80 ms dead-peer timeout)",
			frames),
		Headers: []string{"client", "crash mean", "vs baseline", "peer-hits pre/heal",
			"trips", "recoveries", "degraded frames"},
		Notes: []string{
			"baseline is the same device with no peers at all; the guarded client must stay within 10% of it through the crash window",
			"the unguarded client keeps paying the dead-peer timeout on every P2P-gate frame until the heal",
		},
	}
	for _, guarded := range []bool{true, false} {
		cfg := ChaosConfig{Frames: frames, Seed: s.Seed}
		name := "guarded (breaker + budget)"
		if !guarded {
			cfg.Breaker = p2p.BreakerConfig{Disabled: true}
			cfg.Budget = -1
			name = "unguarded"
		}
		res, err := RunChaos(cfg)
		if err != nil {
			return Report{}, err
		}
		base := res.Baseline[PhaseCrash].Mean
		over := "n/a"
		if base > 0 {
			over = fmtPct(float64(res.Run[PhaseCrash].Mean)/float64(base) - 1)
		}
		trips, recoveries := res.Stats.BreakerEvents()
		report.Rows = append(report.Rows, []string{
			name,
			fmtDur(res.Run[PhaseCrash].Mean),
			over,
			fmt.Sprintf("%d / %d", res.Run[PhasePre].PeerHits, res.Run[PhaseHeal].PeerHits),
			fmt.Sprintf("%d", trips),
			fmt.Sprintf("%d", recoveries),
			fmt.Sprintf("%d", res.Stats.DegradedFrames()),
		})
	}
	return report, nil
}
