package vision

import (
	"fmt"
	"image"
	"image/png"
	"io"
)

// EncodePNG writes im as an 8-bit grayscale PNG, for visual inspection
// of synthetic workloads (cmd/tracegen -render).
func EncodePNG(w io.Writer, im *Image) error {
	if im == nil || len(im.Pix) == 0 {
		return fmt.Errorf("vision: empty image")
	}
	gray := image.NewGray(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.Pix[y*im.W+x]
			gray.Pix[y*gray.Stride+x] = uint8(clamp01(v)*254 + 0.5)
		}
	}
	if err := png.Encode(w, gray); err != nil {
		return fmt.Errorf("vision: encode png: %w", err)
	}
	return nil
}

// DecodePNG reads an 8-bit grayscale PNG back into an Image; lossy
// round trip within 1/254 per pixel.
func DecodePNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("vision: decode png: %w", err)
	}
	bounds := src.Bounds()
	im := NewImage(bounds.Dx(), bounds.Dy())
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r16, g16, b16, _ := src.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
			// Luma for non-gray inputs; exact for gray.
			lum := (0.299*float64(r16) + 0.587*float64(g16) + 0.114*float64(b16)) / 65535
			im.Pix[y*im.W+x] = clamp01(lum)
		}
	}
	return im, nil
}
