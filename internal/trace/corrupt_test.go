package trace

import (
	"math/rand"
	"testing"
	"time"

	"approxcache/internal/imu"
	"approxcache/internal/vision"
)

func healthyWindow(t *testing.T) []imu.Sample {
	t.Helper()
	gen, err := imu.NewGenerator(100, 11)
	if err != nil {
		t.Fatal(err)
	}
	win, err := gen.Generate(imu.Walking, 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := imu.CheckWindow(win, imu.DefaultGuardConfig()); got != imu.WindowOK {
		t.Fatalf("healthy window flagged %v", got)
	}
	return win
}

// Every IMU corruptor must trigger exactly its matching guard class.
func TestCorruptIMUWindowTriggersGuard(t *testing.T) {
	cfg := imu.DefaultGuardConfig()
	tests := []struct {
		fault IMUFault
		want  imu.WindowFault
	}{
		{IMUDropout, imu.WindowDropout},
		{IMUStuck, imu.WindowStuck},
		{IMUSaturate, imu.WindowSaturated},
		{IMUNonMonotonic, imu.WindowNonMonotonic},
		{IMUClockSkew, imu.WindowClockSkew},
		{IMUNonFinite, imu.WindowNonFinite},
	}
	for _, tc := range tests {
		t.Run(tc.fault.String(), func(t *testing.T) {
			win := healthyWindow(t)
			before := make([]imu.Sample, len(win))
			copy(before, win)
			rng := rand.New(rand.NewSource(7))
			out := CorruptIMUWindow(win, tc.fault, rng)
			if got := imu.CheckWindow(out, cfg); got != tc.want {
				t.Fatalf("guard(%v) = %v, want %v", tc.fault, got, tc.want)
			}
			for i := range win {
				if win[i] != before[i] {
					t.Fatal("corruptor mutated its input window")
				}
			}
		})
	}
}

func TestCorruptIMUWindowSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if out := CorruptIMUWindow(nil, IMUDropout, rng); len(out) != 0 {
		t.Fatalf("nil window -> %d samples", len(out))
	}
	one := []imu.Sample{{Offset: time.Millisecond, Accel: [3]float64{0, 0, 9.8}}}
	for _, f := range []IMUFault{IMUDropout, IMUNonMonotonic} {
		out := CorruptIMUWindow(one, f, rng)
		if len(out) != 1 || out[0] != one[0] {
			t.Fatalf("%v on 1-sample window altered it: %v", f, out)
		}
	}
}

// Every frame corruptor must trigger exactly its matching guard class.
func TestCorruptFrameTriggersGuard(t *testing.T) {
	cfg := vision.DefaultFrameGuardConfig()
	tests := []struct {
		fault FrameFault
		want  vision.FrameFault
	}{
		{FrameBlack, vision.FrameLowEntropy},
		{FrameFlat, vision.FrameLowEntropy},
		{FrameNonFinite, vision.FrameNonFinite},
	}
	for _, tc := range tests {
		t.Run(tc.fault.String(), func(t *testing.T) {
			im := vision.NewImage(32, 32)
			for i := range im.Pix {
				im.Pix[i] = float64(i%13) / 13
			}
			rng := rand.New(rand.NewSource(5))
			out := CorruptFrame(im, tc.fault, rng)
			if got := vision.CheckFrame(out, cfg); got != tc.want {
				t.Fatalf("guard(%v) = %v, want %v", tc.fault, got, tc.want)
			}
			if out == im {
				t.Fatal("corruptor returned the input image")
			}
			for i := range im.Pix {
				if im.Pix[i] != float64(i%13)/13 {
					t.Fatal("corruptor mutated its input frame")
				}
			}
		})
	}
}

func TestFaultStrings(t *testing.T) {
	for _, f := range []IMUFault{IMUDropout, IMUStuck, IMUSaturate, IMUNonMonotonic, IMUClockSkew, IMUNonFinite} {
		if f.String() == "" {
			t.Fatalf("empty name for %d", int(f))
		}
	}
	if got := IMUFault(99).String(); got != "IMUFault(99)" {
		t.Fatalf("unknown IMU fault string %q", got)
	}
	if got := FrameFault(99).String(); got != "FrameFault(99)" {
		t.Fatalf("unknown frame fault string %q", got)
	}
}
