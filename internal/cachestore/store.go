// Package cachestore implements the in-memory store behind the
// approximate cache: feature-keyed entries, capacity-bounded eviction
// (LRU, LFU, or cost-aware), and TTL expiry. Entries are mirrored into a
// nearest-neighbor index (internal/lsh) so lookups are approximate while
// bookkeeping stays exact.
package cachestore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

// Policy selects the eviction policy.
type Policy int

// Supported eviction policies.
const (
	// LRU evicts the least recently used entry.
	LRU Policy = iota + 1
	// LFU evicts the least frequently used entry, breaking ties by
	// recency.
	LFU
	// CostAware evicts the entry with the smallest expected saving,
	// estimated as saved-cost × (hits + 1), breaking ties by recency.
	// This is the Potluck-style "value of cached computation" policy.
	CostAware
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case CostAware:
		return "cost-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Entry is one cached recognition result. Copies returned by the store
// are snapshots; mutating them does not affect the cache.
type Entry struct {
	ID         lsh.ID
	Vec        feature.Vector
	Label      string
	Confidence float64
	// Source records where the result came from ("dnn", "peer", ...).
	Source string
	// SavedCost is the computation this entry avoids on a hit
	// (typically the DNN inference latency).
	SavedCost  time.Duration
	InsertedAt time.Time
	LastAccess time.Time
	Hits       int
	// Confirms and Refutes count shadow-audit outcomes: audits whose
	// DNN label agreed (confirm) or disagreed (refute) with this
	// entry. A confirm forgives one outstanding refute; neither
	// counter ever goes negative.
	Confirms int
	Refutes  int
	// ParoleFails counts failed re-verifications while quarantined.
	ParoleFails int
	// Quarantined marks an entry pulled from the candidate index:
	// it no longer appears in Nearest results or kNN votes, and
	// Label refuses to resolve it, until a parole re-verification
	// reinstates it.
	Quarantined bool
}

// Config parameterizes a Store.
type Config struct {
	// Capacity is the maximum number of entries. Must be positive.
	Capacity int
	// Policy selects the eviction policy. Defaults to LRU when zero.
	Policy Policy
	// TTL expires entries this long after insertion. Zero disables
	// expiry.
	TTL time.Duration
	// QuarantineThreshold quarantines an entry once its outstanding
	// refute count (refutes minus forgiven ones) reaches this value.
	// Zero disables quarantine: refutes are still counted but never
	// act.
	QuarantineThreshold int
	// ParoleFailLimit evicts a quarantined entry after this many
	// failed parole re-verifications. Zero keeps the default (2)
	// when quarantine is enabled.
	ParoleFailLimit int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("cachestore: capacity must be positive, got %d", c.Capacity)
	}
	if c.QuarantineThreshold < 0 {
		return fmt.Errorf("cachestore: quarantine threshold must be non-negative, got %d", c.QuarantineThreshold)
	}
	if c.ParoleFailLimit < 0 {
		return fmt.Errorf("cachestore: parole fail limit must be non-negative, got %d", c.ParoleFailLimit)
	}
	switch c.Policy {
	case 0, LRU, LFU, CostAware:
		return nil
	default:
		return fmt.Errorf("cachestore: unknown policy %d", int(c.Policy))
	}
}

// Store is a capacity-bounded, TTL-aware entry store mirrored into a
// nearest-neighbor index. Store is safe for concurrent use.
type Store struct {
	cfg   Config
	clock simclock.Clock
	index lsh.Index

	mu      sync.RWMutex
	entries map[lsh.ID]*Entry
	nextID  lsh.ID
	// nlive/evictions/expiries are atomics so the observability reads
	// (Len, Evictions, Expiries — polled by metrics scrapes and node
	// printouts) never take the store lock. Only lock holders write
	// them.
	nlive     atomic.Int64
	evictions atomic.Int64
	expiries  atomic.Int64
	// minExpiry is the earliest InsertedAt+TTL over live entries as
	// unix nanos (0 = none). Lookups consult it lock-free: until the
	// clock passes it, nothing can be expired and the TTL purge scan
	// is skipped entirely. It may run stale-low after a removal, which
	// costs at most one wasted scan that then recomputes it.
	minExpiry atomic.Int64
	// Quarantine lifecycle counters (cumulative).
	qTotal   int // entries ever quarantined
	qParoled int // quarantined entries reinstated by parole
	qEvicted int // quarantined entries evicted at the parole-fail limit
}

// New builds a Store over index using clock for all timing.
func New(cfg Config, index lsh.Index, clock simclock.Clock) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if index == nil {
		return nil, fmt.Errorf("cachestore: nil index")
	}
	if clock == nil {
		return nil, fmt.Errorf("cachestore: nil clock")
	}
	if cfg.Policy == 0 {
		cfg.Policy = LRU
	}
	if cfg.QuarantineThreshold > 0 && cfg.ParoleFailLimit == 0 {
		cfg.ParoleFailLimit = 2
	}
	return &Store{
		cfg:     cfg,
		clock:   clock,
		index:   index,
		entries: make(map[lsh.ID]*Entry, cfg.Capacity),
		nextID:  1,
	}, nil
}

// Len returns the number of live entries. Lock-free.
func (s *Store) Len() int {
	return int(s.nlive.Load())
}

// Evictions returns how many entries capacity pressure has evicted.
// Lock-free.
func (s *Store) Evictions() int {
	return int(s.evictions.Load())
}

// Expiries returns how many entries TTL expiry has removed. Lock-free.
func (s *Store) Expiries() int {
	return int(s.expiries.Load())
}

// Insert stores a new recognition result and returns its ID, evicting
// per policy if the store is full.
func (s *Store) Insert(vec feature.Vector, label string, confidence float64, source string, savedCost time.Duration) (lsh.ID, error) {
	if len(vec) == 0 {
		return 0, fmt.Errorf("cachestore: empty feature vector")
	}
	if label == "" {
		return 0, fmt.Errorf("cachestore: empty label")
	}
	now := s.clock.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(now)
	for len(s.entries) >= s.cfg.Capacity {
		victim, ok := s.victimLocked()
		if !ok {
			break
		}
		s.removeLocked(victim)
		s.evictions.Add(1)
	}
	id := s.nextID
	s.nextID++
	e := &Entry{
		ID:         id,
		Vec:        vec.Clone(),
		Label:      label,
		Confidence: confidence,
		Source:     source,
		SavedCost:  savedCost,
		InsertedAt: now,
		LastAccess: now,
	}
	if err := s.index.Insert(id, e.Vec); err != nil {
		return 0, fmt.Errorf("index insert: %w", err)
	}
	s.entries[id] = e
	s.nlive.Add(1)
	if s.cfg.TTL > 0 {
		exp := now.Add(s.cfg.TTL).UnixNano()
		if exp == 0 {
			exp = 1 // 0 means "no deadline"; off by 1ns conservative
		}
		if m := s.minExpiry.Load(); m == 0 || exp < m {
			s.minExpiry.Store(exp)
		}
	}
	return id, nil
}

// Get returns a snapshot of the entry and whether it is live (present
// and unexpired). Get does not count as a use for eviction purposes.
func (s *Store) Get(id lsh.ID) (Entry, bool) {
	now := s.clock.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[id]
	if !ok || s.expiredLocked(e, now) {
		return Entry{}, false
	}
	return snapshotEntry(e), true
}

// snapshotEntry copies e, including its feature vector, so callers can
// never mutate store internals.
func snapshotEntry(e *Entry) Entry {
	out := *e
	out.Vec = e.Vec.Clone()
	return out
}

// Touch records a cache hit on id, updating recency and frequency.
func (s *Store) Touch(id lsh.ID) {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		e.LastAccess = now
		e.Hits++
	}
}

// Label resolves id to its label if the entry is live. It matches the
// callback shape of lsh.Vote. Quarantined entries do not resolve:
// they are already absent from the candidate index, but stale IDs
// held by callers (peer answers, in-flight votes) must not revive a
// suspect label either.
func (s *Store) Label(id lsh.ID) (string, bool) {
	e, ok := s.Get(id)
	if !ok || e.Quarantined {
		return "", false
	}
	return e.Label, true
}

// Nearest returns up to k neighbors of q among live entries, ordered by
// distance. Expired entries are removed before searching.
func (s *Store) Nearest(q feature.Vector, k int) ([]lsh.Neighbor, error) {
	return s.NearestInto(q, k, nil)
}

// NearestInto is Nearest writing into dst's backing array. With a
// TTL-free store over an IntoIndex — the standard pipeline shape — a
// lookup takes no store lock and performs no allocation, so read-mostly
// lookups never contend with each other.
func (s *Store) NearestInto(q feature.Vector, k int, dst []lsh.Neighbor) ([]lsh.Neighbor, error) {
	s.purgeExpired(s.clock.Now())
	if ii, ok := s.index.(lsh.IntoIndex); ok {
		return ii.NearestInto(q, k, dst)
	}
	return s.index.Nearest(q, k)
}

// purgeExpired removes expired entries. The fast path is one atomic
// load: until the clock passes the tracked earliest expiry deadline,
// nothing can be expired and no lock is taken at all, so TTL-enabled
// stores keep a fully lock-free lookup path between expiry events.
func (s *Store) purgeExpired(now time.Time) {
	if s.cfg.TTL <= 0 {
		return
	}
	m := s.minExpiry.Load()
	if m == 0 || now.UnixNano() <= m {
		return
	}
	s.mu.Lock()
	s.expireLocked(now)
	s.mu.Unlock()
}

// Remove deletes id from the store and index.
func (s *Store) Remove(id lsh.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(id)
}

// Confirm records a shadow-audit agreement on id: the DNN re-ran on a
// frame this entry served and produced the same label. One outstanding
// refute is forgiven; neither counter ever goes negative.
func (s *Store) Confirm(id lsh.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return
	}
	e.Confirms++
	if e.Refutes > 0 {
		e.Refutes--
	}
}

// Refute records a shadow-audit disagreement on id. When the
// outstanding refute count reaches the quarantine threshold, the entry
// is pulled from the candidate index: it stops appearing in Nearest
// results and kNN votes until a parole re-verification reinstates it.
// Refute reports whether this call quarantined the entry.
func (s *Store) Refute(id lsh.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok || e.Quarantined {
		return false
	}
	e.Refutes++
	if s.cfg.QuarantineThreshold <= 0 || e.Refutes < s.cfg.QuarantineThreshold {
		return false
	}
	e.Quarantined = true
	s.qTotal++
	s.index.Remove(id)
	return true
}

// ParoleOutcome reports what a parole re-verification did to an entry.
type ParoleOutcome int

const (
	// ParoleMissing: the entry is gone or was never quarantined.
	ParoleMissing ParoleOutcome = iota
	// ParoleReinstated: the re-verification agreed; the entry is back
	// in the candidate index with cleared audit counters.
	ParoleReinstated
	// ParoleHeld: the re-verification disagreed; still quarantined.
	ParoleHeld
	// ParoleEvicted: the re-verification disagreed once too often;
	// the entry has been removed for good.
	ParoleEvicted
)

// Parole records the outcome of re-verifying a quarantined entry
// against a fresh DNN result. ok reinstates the entry into the
// candidate index with cleared audit counters; !ok counts a parole
// failure and evicts the entry once ParoleFailLimit failures
// accumulate.
func (s *Store) Parole(id lsh.ID, ok bool) ParoleOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, live := s.entries[id]
	if !live || !e.Quarantined {
		return ParoleMissing
	}
	if ok {
		e.Quarantined = false
		e.Refutes = 0
		e.ParoleFails = 0
		s.qParoled++
		if err := s.index.Insert(id, e.Vec); err != nil {
			// The index refused the vector it previously held (cannot
			// happen with the in-tree indexes); drop the entry rather
			// than keep a permanently unfindable one.
			delete(s.entries, id)
			s.nlive.Add(-1)
			s.qEvicted++
			return ParoleEvicted
		}
		return ParoleReinstated
	}
	e.ParoleFails++
	if s.cfg.ParoleFailLimit > 0 && e.ParoleFails >= s.cfg.ParoleFailLimit {
		s.removeLocked(id)
		s.qEvicted++
		return ParoleEvicted
	}
	return ParoleHeld
}

// Quarantined reports whether id is currently quarantined.
func (s *Store) Quarantined(id lsh.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[id]
	return ok && e.Quarantined
}

// QuarantineStats summarizes quarantine activity.
type QuarantineStats struct {
	// Active is the number of currently quarantined entries.
	Active int
	// Total counts entries ever quarantined.
	Total int
	// Paroled counts quarantined entries reinstated by parole.
	Paroled int
	// Evicted counts quarantined entries removed at the parole-fail
	// limit.
	Evicted int
}

// QuarantineStats returns the store's quarantine lifecycle counters.
func (s *Store) QuarantineStats() QuarantineStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := QuarantineStats{
		Total:   s.qTotal,
		Paroled: s.qParoled,
		Evicted: s.qEvicted,
	}
	for _, e := range s.entries {
		if e.Quarantined {
			st.Active++
		}
	}
	return st
}

// StoreStats summarizes the store's occupancy and churn.
type StoreStats struct {
	// Entries is the live entry count.
	Entries int
	// Evictions and Expiries count removals by cause.
	Evictions int
	Expiries  int
	// BySource counts live entries by their recorded source.
	BySource map[string]int
	// TotalHits sums the hit counters of live entries.
	TotalHits int
	// SavedTotal sums SavedCost × Hits over live entries: the
	// inference time this store's reuse has avoided so far.
	SavedTotal time.Duration
}

// Stats returns an occupancy/churn summary. A snapshot of a store with
// nothing expired runs entirely under the read lock, so periodic stats
// scraping cannot stall the lookup path.
func (s *Store) Stats() StoreStats {
	s.purgeExpired(s.clock.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := StoreStats{
		Entries:   len(s.entries),
		Evictions: int(s.evictions.Load()),
		Expiries:  int(s.expiries.Load()),
		BySource:  make(map[string]int),
	}
	for _, e := range s.entries {
		st.BySource[e.Source]++
		st.TotalHits += e.Hits
		st.SavedTotal += time.Duration(e.Hits) * e.SavedCost
	}
	return st
}

// Snapshot returns copies of all live entries, for export/gossip. Like
// Stats, it only needs the read lock unless entries have expired.
func (s *Store) Snapshot() []Entry {
	s.purgeExpired(s.clock.Now())
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, snapshotEntry(e))
	}
	return out
}

func (s *Store) removeLocked(id lsh.ID) {
	if _, ok := s.entries[id]; !ok {
		return
	}
	delete(s.entries, id)
	s.nlive.Add(-1)
	s.index.Remove(id)
}

func (s *Store) expiredLocked(e *Entry, now time.Time) bool {
	return s.cfg.TTL > 0 && now.Sub(e.InsertedAt) > s.cfg.TTL
}

func (s *Store) expireLocked(now time.Time) {
	if s.cfg.TTL <= 0 {
		return
	}
	var next int64 // earliest surviving deadline, unix nanos (0 = none)
	for id, e := range s.entries {
		if s.expiredLocked(e, now) {
			s.removeLocked(id)
			s.expiries.Add(1)
			continue
		}
		exp := e.InsertedAt.Add(s.cfg.TTL).UnixNano()
		if exp == 0 {
			exp = 1
		}
		if next == 0 || exp < next {
			next = exp
		}
	}
	s.minExpiry.Store(next)
}

// victimLocked picks the entry to evict under the configured policy.
func (s *Store) victimLocked() (lsh.ID, bool) {
	var (
		victim lsh.ID
		found  bool
		best   *Entry
	)
	worse := func(cand, incumbent *Entry) bool {
		switch s.cfg.Policy {
		case LFU:
			if cand.Hits != incumbent.Hits {
				return cand.Hits < incumbent.Hits
			}
		case CostAware:
			cv := float64(cand.SavedCost) * float64(cand.Hits+1)
			iv := float64(incumbent.SavedCost) * float64(incumbent.Hits+1)
			if cv != iv {
				return cv < iv
			}
		}
		if !cand.LastAccess.Equal(incumbent.LastAccess) {
			return cand.LastAccess.Before(incumbent.LastAccess)
		}
		// Final tie-break by ID for determinism.
		return cand.ID < incumbent.ID
	}
	for _, e := range s.entries {
		if !found || worse(e, best) {
			victim, best, found = e.ID, e, true
		}
	}
	return victim, found
}
