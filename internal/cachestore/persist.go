package cachestore

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"approxcache/internal/feature"
)

// snapshotFormatVersion guards against incompatible snapshot files.
const snapshotFormatVersion = 1

// wireEntry is the serialized form of one cache entry. Timestamps and
// hit counts are deliberately not persisted: an imported entry starts a
// fresh life under the importer's clock and policy.
type wireEntry struct {
	Vec        []float64 `json:"vec"`
	Label      string    `json:"label"`
	Confidence float64   `json:"confidence"`
	Source     string    `json:"source"`
	// SavedCostMicros carries the avoided cost in microseconds
	// (encoding/json has no native duration support).
	SavedCostMicros int64 `json:"savedCostMicros"`
}

// wireSnapshot is the snapshot file layout.
type wireSnapshot struct {
	Version int         `json:"version"`
	Entries []wireEntry `json:"entries"`
}

// Export writes all live entries to w as JSON. The snapshot can warm a
// fresh store on another device or a later session.
func (s *Store) Export(w io.Writer) error {
	entries := s.Snapshot()
	out := wireSnapshot{
		Version: snapshotFormatVersion,
		Entries: make([]wireEntry, 0, len(entries)),
	}
	for _, e := range entries {
		out.Entries = append(out.Entries, wireEntry{
			Vec:             e.Vec,
			Label:           e.Label,
			Confidence:      e.Confidence,
			Source:          e.Source,
			SavedCostMicros: e.SavedCost.Microseconds(),
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("cachestore: export: %w", err)
	}
	return nil
}

// Import reads a snapshot from r and inserts its entries, subject to
// the store's normal capacity and eviction rules. It returns how many
// entries were inserted. Imported entries keep their labels and costs
// but start with fresh recency/frequency state.
func (s *Store) Import(r io.Reader) (int, error) {
	var in wireSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return 0, fmt.Errorf("cachestore: import: %w", err)
	}
	if in.Version != snapshotFormatVersion {
		return 0, fmt.Errorf("cachestore: snapshot version %d, want %d",
			in.Version, snapshotFormatVersion)
	}
	inserted := 0
	for i, e := range in.Entries {
		if len(e.Vec) == 0 || e.Label == "" {
			return inserted, fmt.Errorf("cachestore: snapshot entry %d invalid", i)
		}
		if _, err := s.Insert(feature.Vector(e.Vec), e.Label, e.Confidence, e.Source,
			time.Duration(e.SavedCostMicros)*time.Microsecond); err != nil {
			return inserted, fmt.Errorf("cachestore: import entry %d: %w", i, err)
		}
		inserted++
	}
	return inserted, nil
}
