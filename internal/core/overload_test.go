package core

import (
	"errors"
	"testing"
	"time"

	"approxcache/internal/admission"
	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// blockingClassifier parks every Infer call until release is closed, so
// tests can hold the admission limiter's only slot deterministically.
type blockingClassifier struct {
	inner   *dnn.Classifier
	release chan struct{}
}

func (b *blockingClassifier) Profile() dnn.Profile { return b.inner.Profile() }

func (b *blockingClassifier) Infer(im *vision.Image) (dnn.Inference, error) {
	<-b.release
	return b.inner.Infer(im)
}

// overloadConfig strips the motion gates so every frame exercises the
// cache lookup and the guarded fallback — the overload-protected path.
func overloadConfig() Config {
	cfg := DefaultConfig()
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	cfg.DisableSensorGuards = true
	return cfg
}

// newOverloadFixture is newFixture with an optional custom classifier.
func newOverloadFixture(t *testing.T, cfg Config, cls Classifier) *fixture {
	t.Helper()
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	if cls == nil {
		classifier, err := dnn.NewClassifier(perfectProfile(), classes, 1)
		if err != nil {
			t.Fatal(err)
		}
		cls = classifier
	}
	idx, err := lsh.NewHyperplane(cfg.Extractor.Dim(), 12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	store, err := cachestore.New(cachestore.Config{Capacity: 128}, idx, clock)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, Deps{Clock: clock, Classifier: cls, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: eng, clock: clock, store: store, classes: classes}
}

// seedLastResult plants a prior recognition so the degradation ladder's
// last-result rung has something to serve.
func seedLastResult(e *Engine, label string) {
	e.mu.Lock()
	e.last = Result{Label: label, Confidence: 0.9, Source: metrics.SourceDNN}
	e.hasLast = true
	e.lastAt = e.deps.Clock.Now()
	e.mu.Unlock()
}

// Two pool sessions must not retry a sick classifier in lockstep: their
// deterministic jitter schedules have to diverge.
func TestRetryJitterSchedulesDiverge(t *testing.T) {
	w := &watchdog{cfg: WatchdogConfig{RetryJitter: 10 * time.Millisecond}}
	a, b := jitterSeedFor(0), jitterSeedFor(1)
	if a == b {
		t.Fatal("adjacent sessions got the same jitter seed")
	}
	identical := true
	for attempt := 0; attempt < 6; attempt++ {
		ja, jb := w.retryJitter(a, attempt), w.retryJitter(b, attempt)
		for _, j := range []time.Duration{ja, jb} {
			if j < 0 || j >= w.cfg.RetryJitter {
				t.Fatalf("attempt %d jitter %v outside [0, %v)", attempt, j, w.cfg.RetryJitter)
			}
		}
		if ja != jb {
			identical = false
		}
	}
	if identical {
		t.Fatal("sessions 0 and 1 share an identical retry schedule")
	}
	// The schedule is deterministic: same seed, same pauses.
	if w.retryJitter(a, 3) != w.retryJitter(a, 3) {
		t.Fatal("jitter is not deterministic")
	}
	// Jitter off means no extra pause at all.
	off := &watchdog{cfg: WatchdogConfig{}}
	if off.retryJitter(a, 1) != 0 {
		t.Fatal("disabled jitter still pauses")
	}
}

func TestPoolSessionsGetDistinctJitterSeeds(t *testing.T) {
	f := newFixture(t, DefaultConfig(), nil)
	pool, err := NewPool(3, DefaultConfig(), Deps{
		Clock: f.clock, Classifier: f.engine.deps.Classifier, Store: f.store,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, e := range pool.Sessions() {
		if seen[e.jitterSeed] {
			t.Fatalf("duplicate jitter seed %x", e.jitterSeed)
		}
		seen[e.jitterSeed] = true
	}
}

// A frame that blows its deadline before the fallback must be answered
// from the ladder as a typed shed — or fail with ErrDeadlineExceeded
// when the ladder is empty — never occupy the classifier.
func TestDeadlineBlownShedsToLadder(t *testing.T) {
	cfg := overloadConfig()
	cfg.RequestDeadline = time.Nanosecond
	f := newOverloadFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}

	// Cold ladder: the refusal surfaces as the typed cause.
	if _, err := f.engine.Process(proto, nil); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("cold-ladder error = %v, want ErrDeadlineExceeded", err)
	}
	if drops := f.engine.Stats().ExpiredDrops(); drops != 1 {
		t.Fatalf("expired drops = %d, want 1", drops)
	}

	// Warm ladder: the shed is served, typed, at reduced confidence.
	seedLastResult(f.engine, "seeded")
	res, err := f.engine.Process(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceShed || res.Degradation != DegradeDeadline {
		t.Fatalf("shed typing = %s/%s, want shed/deadline", res.Source, res.Degradation)
	}
	if res.Label != "seeded" || res.Confidence != 0.9*fallbackConfidence {
		t.Fatalf("shed answer = %q conf %v", res.Label, res.Confidence)
	}
	inDeadline, late := f.engine.Stats().DeadlineCompletions()
	if inDeadline != 0 || late != 1 {
		t.Fatalf("deadline completions = %d in / %d late, want 0/1", inDeadline, late)
	}
}

func TestDeadlineCompletionAccounting(t *testing.T) {
	cfg := overloadConfig()
	cfg.RequestDeadline = time.Hour
	f := newOverloadFixture(t, cfg, nil)
	proto, err := f.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.engine.Process(proto, nil); err != nil {
		t.Fatal(err)
	}
	inDeadline, late := f.engine.Stats().DeadlineCompletions()
	if inDeadline != 1 || late != 0 {
		t.Fatalf("deadline completions = %d in / %d late, want 1/0", inDeadline, late)
	}
}

// admissionConfig pins the limiter at one slot so a single blocked
// inference saturates it.
func admissionConfig(raiseAfter int) admission.Config {
	return admission.Config{
		Enabled: true, MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		Increase: 1, Backoff: 0.5, BackoffCooldown: 1,
		BrownoutRaiseAfter: raiseAfter, BrownoutLowerAfter: 1000,
	}
}

// waitInflight polls until the limiter reports n in-flight inferences.
func waitInflight(t *testing.T, e *Engine, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := e.AdmissionSnapshot(); ok && snap.Inflight == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("limiter never reached %d in-flight", n)
}

// With the limiter's only slot held by a blocked inference, further
// DNN-needing frames must shed: a typed error on a cold ladder, a
// typed SourceShed/DegradeOverload result on a warm one.
func TestAdmissionRefusalShedsTyped(t *testing.T) {
	cfg := overloadConfig()
	cfg.Watchdog.Disabled = true
	cfg.Admission = admissionConfig(1000)
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	blocked := &blockingClassifier{inner: inner, release: make(chan struct{})}
	f := newOverloadFixture(t, cfg, blocked)
	f.classes = classes
	proto, err := classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}

	hold := make(chan error, 1)
	go func() {
		_, err := f.engine.Process(proto, nil)
		hold <- err
	}()
	waitInflight(t, f.engine, 1)

	if _, err := f.engine.Process(proto, nil); !errors.Is(err, ErrOverloadShed) {
		t.Fatalf("cold-ladder error = %v, want ErrOverloadShed", err)
	}
	seedLastResult(f.engine, "seeded")
	res, err := f.engine.Process(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceShed || res.Degradation != DegradeOverload {
		t.Fatalf("shed typing = %s/%s, want shed/overload", res.Source, res.Degradation)
	}
	if sheds := f.engine.Stats().Sheds(); sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}

	close(blocked.release)
	if err := <-hold; err != nil {
		t.Fatalf("held inference failed: %v", err)
	}
	snap, ok := f.engine.AdmissionSnapshot()
	if !ok || snap.Admitted != 1 || snap.Shed != 2 || snap.Inflight != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// Sustained pressure at the limiter floor browns out the vote: the
// engine serves the nearest in-range candidate directly (k=1) instead
// of running the homogenized-kNN acceptance.
func TestBrownoutServesFirstCandidate(t *testing.T) {
	cfg := overloadConfig()
	cfg.Watchdog.Disabled = true
	cfg.Admission = admissionConfig(1)
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	blocked := &blockingClassifier{inner: inner, release: make(chan struct{})}
	f := newOverloadFixture(t, cfg, blocked)
	proto, err := classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}

	hold := make(chan error, 1)
	go func() {
		_, err := f.engine.Process(proto, nil)
		hold <- err
	}()
	waitInflight(t, f.engine, 1)

	// Two refusals at the floor raise the brownout ladder twice:
	// full → no-peer → first-candidate.
	other, err := classes.Prototype(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.engine.Process(other, nil); !errors.Is(err, ErrOverloadShed) {
			t.Fatalf("refusal %d error = %v, want ErrOverloadShed", i, err)
		}
	}
	snap, ok := f.engine.AdmissionSnapshot()
	if !ok || snap.Level != admission.LevelFirstCandidate {
		t.Fatalf("brownout level = %v, want first-candidate", snap.Level)
	}
	raised, lowered := f.engine.Stats().BrownoutTransitions()
	if raised != 2 || lowered != 0 {
		t.Fatalf("brownout transitions = %d up / %d down, want 2/0", raised, lowered)
	}

	// A cached candidate at distance zero is served straight from the
	// store, no vote, while the accelerator stays saturated.
	vec, err := cfg.Extractor.Extract(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.store.Insert(vec, "first-cand", 0.8, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	res, err := f.engine.Process(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != metrics.SourceLocal || res.Label != "first-cand" {
		t.Fatalf("brownout serve = %s/%q, want local/first-cand", res.Source, res.Label)
	}

	close(blocked.release)
	if err := <-hold; err != nil {
		t.Fatalf("held inference failed: %v", err)
	}
}
