// Command cachenode runs a live approximate-cache node that serves the
// peer protocol over TCP. Nodes sharing a -class-seed recognize the
// same object vocabulary, so one node's cached results answer another
// node's queries.
//
// Typical two-terminal session:
//
//	# terminal 1: a warm node
//	cachenode -addr 127.0.0.1:7070 -warm 600
//
//	# terminal 2: a cold node that reuses terminal 1's work
//	cachenode -addr 127.0.0.1:7071 -peers 127.0.0.1:7070 -frames 300
//
// A node can also serve many concurrent client sessions from one
// process — a sharded cache store and (optionally) micro-batched
// inference keep them from serializing on shared locks:
//
//	cachenode -serve -sessions 16 -shards 8 -batch 8
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"approxcache"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachenode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cachenode", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "TCP listen address")
		name      = fs.String("name", "cachenode", "node name advertised in pings")
		peersFlag = fs.String("peers", "", "comma-separated peer addresses")
		frames    = fs.Int("frames", 300, "frames to process after warmup")
		warm      = fs.Int("warm", 0, "frames to process before serving stats (cache warmup)")
		seed      = fs.Int64("seed", 1, "workload seed (vary per node)")
		classSeed = fs.Int64("class-seed", 424242, "shared class vocabulary seed")
		model     = fs.String("model", "mobilenet-v2", "dnn profile (mobilenet-v2|squeezenet|inception-v3|resnet-50)")
		serve     = fs.Bool("serve", false, "keep serving after processing until interrupted")
		budget    = fs.Duration("peer-budget", 0, "per-frame peer time budget (0 = quarter of mean inference latency, negative = unbounded)")
		snapshot  = fs.String("snapshot", "", "snapshot file: warm-start from it on boot, save back to it on exit (crash-safe atomic write)")
		sessions  = fs.Int("sessions", 1, "concurrent client sessions sharing this node's cache")
		shards    = fs.Int("shards", 0, "cache store shards (0 = auto: unsharded for one session, 8 for more)")
		batch     = fs.Int("batch", 0, "micro-batch size for DNN inference across sessions (0 = unbatched)")
		deadline  = fs.Duration("deadline", 0, "per-request wall-clock budget; blown requests are answered from the degradation ladder (0 = off)")
		admit     = fs.Bool("admission", false, "enable AIMD admission control on the DNN fallback (sheds excess load under overload)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, err := profileByName(*model)
	if err != nil {
		return err
	}
	if *sessions > 1 {
		return runPool(poolParams{
			name: *name, addr: *addr, peers: *peersFlag,
			sessions: *sessions, shards: *shards, batch: *batch,
			frames: *frames, warm: *warm,
			seed: *seed, classSeed: *classSeed,
			profile: profile, serve: *serve, budget: *budget, snapshot: *snapshot,
			deadline: *deadline, admission: *admit,
		})
	}
	spec := approxcache.StationaryHeavyWorkload(*warm+*frames, *seed)
	spec.ClassSeed = *classSeed
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	classifier, err := approxcache.NewSimulatedClassifier(profile, w, *seed)
	if err != nil {
		return fmt.Errorf("classifier: %w", err)
	}
	opts := approxcache.Options{
		Clock:           approxcache.NewVirtualClock(),
		PeerBudget:      *budget,
		Shards:          *shards,
		RequestDeadline: *deadline,
	}
	if *admit {
		opts.Admission = approxcache.DefaultAdmissionConfig()
	}
	cache, err := approxcache.New(classifier, opts)
	if err != nil {
		return err
	}

	if *snapshot != "" {
		// Recovery on start: a missing file is a cold start, a corrupt
		// one (torn write from a crash mid-save) is reported but not
		// fatal — the node just starts cold.
		n, lerr := cache.LoadSnapshotFile(*snapshot)
		switch {
		case lerr != nil:
			fmt.Fprintf(os.Stderr, "cachenode: snapshot %s unusable (%v), starting cold\n", *snapshot, lerr)
		case n > 0:
			fmt.Printf("warm-started %d entries from %s\n", n, *snapshot)
		}
	}

	srv, err := cache.ServeTCP(*name, *addr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cachenode: close:", cerr)
		}
	}()
	fmt.Printf("%s listening on %s (model %s, %d classes)\n",
		*name, srv.Addr(), profile.Name, spec.NumClasses)

	var client *approxcache.PeerClient
	if *peersFlag != "" {
		addrs := splitComma(*peersFlag)
		client, err = cache.DialPeers(addrs...)
		if err != nil {
			return err
		}
		// Rank peers by liveness and cache warmth before starting.
		roster, err := approxcache.NewPeerRoster(*name, client, approxcache.NewVirtualClock())
		if err != nil {
			return err
		}
		roster.Add(addrs...)
		best := roster.ApplyBest(0)
		fmt.Printf("peering with %v (%d alive)\n", addrs, len(best))
		for _, peer := range best {
			if info, ok := roster.Info(peer); ok {
				fmt.Printf("  %s: %d cached entries, rtt %v\n",
					peer, info.Entries, info.RTT.Round(10*time.Microsecond))
			}
		}
	}

	replay := func(frames []approxcache.Frame, label string) error {
		prev := time.Duration(0)
		start := time.Now()
		for _, fr := range frames {
			win := w.IMUWindow(prev, fr.Offset)
			prev = fr.Offset
			if _, err := cache.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
				return fmt.Errorf("frame %d: %w", fr.Index, err)
			}
		}
		fmt.Printf("%s: processed %d frames in %v wall time\n",
			label, len(frames), time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *warm > 0 {
		if err := replay(w.Frames[:*warm], "warmup"); err != nil {
			return err
		}
	}
	if *frames > 0 {
		if err := replay(w.Frames[*warm:], "run"); err != nil {
			return err
		}
	}

	printStats(cache, client)
	if *serve {
		fmt.Println("serving peers; ctrl-c to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	if *snapshot != "" {
		if serr := cache.SaveSnapshotFile(*snapshot); serr != nil {
			return fmt.Errorf("save snapshot: %w", serr)
		}
		fmt.Printf("saved %d entries to %s\n", cache.Len(), *snapshot)
	}
	return nil
}

// poolParams carries the multi-session serving configuration.
type poolParams struct {
	name, addr, peers string
	sessions          int
	shards            int
	batch             int
	frames, warm      int
	seed, classSeed   int64
	profile           approxcache.ModelProfile
	serve             bool
	budget            time.Duration
	snapshot          string
	deadline          time.Duration
	admission         bool
}

// runPool serves p.sessions concurrent client streams from one node:
// every stream gets its own gate state, all streams share the (sharded)
// cache store, the stats scoreboard, and a micro-batching inference
// scheduler when -batch is set.
func runPool(p poolParams) error {
	if p.shards == 0 {
		p.shards = 8
	}
	workloads := make([]*approxcache.Workload, p.sessions)
	for i := range workloads {
		spec := approxcache.StationaryHeavyWorkload(p.warm+p.frames, p.seed+int64(i)*101)
		spec.ClassSeed = p.classSeed
		w, err := approxcache.GenerateWorkload(spec)
		if err != nil {
			return fmt.Errorf("workload %d: %w", i, err)
		}
		workloads[i] = w
	}
	classifier, err := approxcache.NewSimulatedClassifier(p.profile, workloads[0], p.seed)
	if err != nil {
		return fmt.Errorf("classifier: %w", err)
	}
	opts := approxcache.Options{
		Clock:           approxcache.NewVirtualClock(),
		PeerBudget:      p.budget,
		Shards:          p.shards,
		BatchSize:       p.batch,
		RequestDeadline: p.deadline,
	}
	if p.admission {
		opts.Admission = approxcache.DefaultAdmissionConfig()
	}
	pool, err := approxcache.NewPool(p.sessions, classifier, opts)
	if err != nil {
		return err
	}
	defer pool.Close()
	front := pool.Session(0)

	if p.snapshot != "" {
		n, lerr := front.LoadSnapshotFile(p.snapshot)
		switch {
		case lerr != nil:
			fmt.Fprintf(os.Stderr, "cachenode: snapshot %s unusable (%v), starting cold\n", p.snapshot, lerr)
		case n > 0:
			fmt.Printf("warm-started %d shared entries from %s\n", n, p.snapshot)
		}
	}

	srv, err := front.ServeTCP(p.name, p.addr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cachenode: close:", cerr)
		}
	}()
	fmt.Printf("%s listening on %s (model %s, %d sessions, %d shards, batch %d)\n",
		p.name, srv.Addr(), p.profile.Name, p.sessions, p.shards, p.batch)

	var client *approxcache.PeerClient
	if p.peers != "" {
		// The peer gate rides on session 0; every session still benefits
		// because peer answers land in the shared store.
		client, err = front.DialPeers(splitComma(p.peers)...)
		if err != nil {
			return err
		}
		fmt.Printf("session 0 peering with %v\n", splitComma(p.peers))
	}

	total := p.warm + p.frames
	if total > 0 {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, p.sessions)
		for s := 0; s < p.sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				c := pool.Session(s)
				w := workloads[s]
				prev := time.Duration(0)
				for _, fr := range w.Frames {
					win := w.IMUWindow(prev, fr.Offset)
					prev = fr.Offset
					if _, err := c.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
						errs[s] = fmt.Errorf("session %d frame %d: %w", s, fr.Index, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		wall := time.Since(start)
		fmt.Printf("run: %d sessions × %d frames in %v wall time (%.1f frames/sec)\n",
			p.sessions, total, wall.Round(time.Millisecond),
			float64(p.sessions*total)/wall.Seconds())
	}

	printStats(front, client)
	printServingStats(pool)
	if p.serve {
		fmt.Println("serving peers; ctrl-c to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	if p.snapshot != "" {
		if serr := front.SaveSnapshotFile(p.snapshot); serr != nil {
			return fmt.Errorf("save snapshot: %w", serr)
		}
		fmt.Printf("saved %d entries to %s\n", front.Len(), p.snapshot)
	}
	return nil
}

// printServingStats reports the multi-session layers: per-shard
// occupancy/contention and the micro-batcher's coalescing.
func printServingStats(pool *approxcache.Pool) {
	if shards := pool.ShardStats(); shards != nil {
		fmt.Printf("shards (%d):\n", len(shards))
		for _, sh := range shards {
			fmt.Printf("  shard %d: %d entries, %d lookups, %d inserts, %d contended ops\n",
				sh.Shard, sh.Entries, sh.Lookups, sh.Inserts, sh.Contended)
		}
	}
	if bs, ok := pool.BatcherStats(); ok {
		fmt.Printf("batcher: %d frames in %d batches (avg %.1f), %d full, %d deadline flushes",
			bs.Frames, bs.Batches, bs.AvgSize(), bs.FullFlushes, bs.DeadlineFlushes)
		if bs.ExpiredDrops > 0 || bs.Overflows > 0 {
			fmt.Printf(", %d expired in queue, %d queue overflows", bs.ExpiredDrops, bs.Overflows)
		}
		fmt.Println()
	}
	if snap, ok := pool.AdmissionSnapshot(); ok {
		fmt.Printf("admission: limit %d (inflight %d), %d admitted, %d shed, brownout %s (%d transitions)\n",
			snap.Limit, snap.Inflight, snap.Admitted, snap.Shed, snap.Level, snap.Transitions)
	}
}

func printStats(cache *approxcache.Cache, client *approxcache.PeerClient) {
	stats := cache.Stats()
	fmt.Printf("frames: %d  hit-rate: %.1f%%  accuracy: %.1f%%  cache entries: %d\n",
		stats.Frames(), stats.HitRate()*100, stats.Accuracy()*100, cache.Len())
	sum := stats.Latency().Summary()
	fmt.Printf("latency: mean=%v p50=%v p99=%v\n", sum.Mean, sum.P50, sum.P99)
	counts := stats.CountBySource()
	fmt.Printf("sources: imu=%d video=%d local=%d peer=%d dnn=%d fallback=%d shed=%d\n",
		counts[approxcache.SourceIMU], counts[approxcache.SourceVideo],
		counts[approxcache.SourceLocal], counts[approxcache.SourcePeer],
		counts[approxcache.SourceDNN], counts[approxcache.SourceFallback],
		counts[approxcache.SourceShed])
	if sheds, drops := stats.Sheds(), stats.ExpiredDrops(); sheds > 0 || drops > 0 {
		up, down := stats.BrownoutTransitions()
		fmt.Printf("overload: %d shed, %d expired in queue, brownout %d up / %d down\n",
			sheds, drops, up, down)
	}
	if inDeadline, late := stats.DeadlineCompletions(); inDeadline+late > 0 {
		fmt.Printf("deadlines: %d in-deadline, %d late\n", inDeadline, late)
	}
	if sf := stats.SensorFaultTotal(); sf > 0 {
		fmt.Printf("sensor faults: %d flagged", sf)
		for _, kind := range sortedFaultKinds(stats.SensorFaults()) {
			fmt.Printf(" %s=%d", kind, stats.SensorFaults()[kind])
		}
		fmt.Println()
	}
	timeouts, retries, wtrips, wrecoveries, fastFails := stats.WatchdogEvents()
	if timeouts+retries+wtrips+wrecoveries+fastFails > 0 || stats.DegradedServeTotal() > 0 {
		fmt.Printf("watchdog: %d timeouts, %d retries, %d trips, %d recoveries, %d fast-fails, %d degraded serves\n",
			timeouts, retries, wtrips, wrecoveries, fastFails, stats.DegradedServeTotal())
	}
	q, h := stats.PeerQueries()
	if q > 0 {
		fmt.Printf("peer queries: %d (%d hits)\n", q, h)
	}
	if trips, recoveries := stats.BreakerEvents(); trips > 0 || stats.PeerTimeouts() > 0 || stats.DegradedFrames() > 0 {
		fmt.Printf("resilience: %d timeouts, %d breaker trips, %d recoveries, %d degraded frames\n",
			stats.PeerTimeouts(), trips, recoveries, stats.DegradedFrames())
	}
	if client != nil {
		for _, p := range client.Health().Peers {
			fmt.Printf("  peer %s: %s, %d ok / %d failed, rtt ewma %v\n",
				p.Peer, p.State, p.Successes, p.Failures, p.LatencyEWMA.Round(10*time.Microsecond))
		}
		if ws := client.WireStats(); ws.SentMsgs > 0 || ws.RecvMsgs > 0 {
			fmt.Printf("wire: sent %d msgs / %d B, recv %d msgs / %d B\n",
				ws.SentMsgs, ws.SentBytes, ws.RecvMsgs, ws.RecvBytes)
			if ws.CoalescedInFlight+ws.CoalescedCached > 0 || ws.Batches > 0 {
				fmt.Printf("wire: coalesced %d in-flight + %d cached, %d gossip batches (avg %.1f items)\n",
					ws.CoalescedInFlight, ws.CoalescedCached, ws.Batches, ws.AvgBatch())
			}
		}
	}
	ss := cache.StoreStats()
	fmt.Printf("store: %d entries (dnn=%d peer=%d), %d evictions, feature-cache reuse saved %v of inference\n",
		ss.Entries, ss.BySource["dnn"], ss.BySource["peer"], ss.Evictions,
		ss.SavedTotal.Round(time.Millisecond))
}

func profileByName(name string) (approxcache.ModelProfile, error) {
	for _, p := range []approxcache.ModelProfile{
		approxcache.MobileNetV2,
		approxcache.SqueezeNet,
		approxcache.InceptionV3,
		approxcache.ResNet50,
	} {
		if p.Name == name {
			return p, nil
		}
	}
	return approxcache.ModelProfile{}, fmt.Errorf("unknown model %q", name)
}

func sortedFaultKinds(m map[string]int) []string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
