package core

import (
	"sync"
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
	"approxcache/internal/testutil"
	"approxcache/internal/vision"
)

// qualityFixture is a fixture whose classifier can drift mid-run and
// whose store quarantines on the first refute.
type qualityFixture struct {
	engine  *Engine
	clock   *simclock.Virtual
	store   *cachestore.Store
	classes *vision.ClassSet
	faulty  *dnn.FaultyClassifier
}

func newQualityFixture(t *testing.T, quality QualityConfig) *qualityFixture {
	t.Helper()
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	classifier, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := dnn.NewFaultyClassifier(classifier, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	// Route every reuse through the local cache so audits exercise the
	// entry bookkeeping, not the sensor gates.
	cfg.DisableIMUGate = true
	cfg.DisableVideoGate = true
	cfg.Quality = quality
	idx, err := lsh.NewHyperplane(cfg.Extractor.Dim(), 12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	store, err := cachestore.New(cachestore.Config{Capacity: 8, QuarantineThreshold: 1}, idx, clock)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, Deps{Clock: clock, Classifier: faulty, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return &qualityFixture{engine: eng, clock: clock, store: store, classes: classes, faulty: faulty}
}

func TestQualityConfigValidate(t *testing.T) {
	if err := (QualityConfig{}).Validate(); err != nil {
		t.Fatalf("disabled config must validate: %v", err)
	}
	if err := DefaultQualityConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	bad := []QualityConfig{
		{Enabled: true, AuditSampleEvery: -1},
		{Enabled: true, TargetAccuracy: 1.2},
		{Enabled: true, Hysteresis: 0.95},
		{Enabled: true, EWMAAlpha: 2},
		{Enabled: true, TightenStep: 1.5},
		{Enabled: true, LoosenStep: 0.5},
		{Enabled: true, MinScale: -0.1},
		{Enabled: true, RefusalFrames: -1},
		{Enabled: true, AlarmAudits: -1},
		{Enabled: true, MaxPending: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

// TestShadowAuditConfirmsHealthyReuse: with no drift, every audited
// reuse agrees with the DNN — confirms accumulate, nothing is refuted
// or quarantined, and the live-accuracy estimate stays at 1.
func TestShadowAuditConfirmsHealthyReuse(t *testing.T) {
	fx := newQualityFixture(t, QualityConfig{
		Enabled: true, Synchronous: true, AuditSampleEvery: 1,
	})
	im, err := fx.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := fx.engine.Process(im, nil); err != nil {
			t.Fatal(err)
		}
	}
	audits, refutes := fx.engine.Stats().Audits()
	if audits == 0 || refutes != 0 {
		t.Fatalf("audits=%d refutes=%d, want some audits and zero refutes", audits, refutes)
	}
	snap, ok := fx.engine.QualitySnapshot()
	if !ok || snap.LiveAccuracy != 1 || snap.Scale != 1 {
		t.Fatalf("snapshot = %+v ok=%v", snap, ok)
	}
	if st := fx.store.QuarantineStats(); st.Total != 0 {
		t.Fatalf("healthy reuse quarantined entries: %+v", st)
	}
}

// TestShadowAuditDetectsDriftAndHeals: after the classifier silently
// drifts, the next audited reuse refutes the stale entry, quarantines
// it, repairs the neighborhood, and the frame after that serves the
// drifted label again.
func TestShadowAuditDetectsDriftAndHeals(t *testing.T) {
	fx := newQualityFixture(t, QualityConfig{
		Enabled: true, Synchronous: true, AuditSampleEvery: 1,
	})
	im, err := fx.classes.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache and confirm healthy reuse.
	for i := 0; i < 3; i++ {
		res, err := fx.engine.Process(im, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Label != dnn.LabelOf(0) {
			t.Fatalf("pre-drift label = %q", res.Label)
		}
	}
	// The model drifts: same scene, new label, no error, no slowdown.
	relabel := dnn.ShiftRelabel(1, fx.classes.NumClasses())
	if err := fx.faulty.SetFaultPlan(dnn.FaultPlan{{
		From: fx.faulty.Calls(), To: 1 << 30, Kind: dnn.FaultDrift, Relabel: relabel,
	}}); err != nil {
		t.Fatal(err)
	}
	drifted := relabel(dnn.LabelOf(0))
	// The serve straight after the drift is a stale cache hit — that is
	// the failure mode. Its shadow audit must catch it.
	res, err := fx.engine.Process(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != dnn.LabelOf(0) {
		t.Fatalf("first post-drift serve = %q, want the stale %q (else no drift happened)",
			res.Label, dnn.LabelOf(0))
	}
	if _, refutes := fx.engine.Stats().Audits(); refutes == 0 {
		t.Fatal("audit did not refute the stale serve")
	}
	if st := fx.store.QuarantineStats(); st.Total == 0 {
		t.Fatal("refuted entry was not quarantined")
	}
	// Healing must win within a few frames: repair purged the stale
	// neighborhood, inserted the fresh label, and forced revalidation.
	healed := false
	for i := 0; i < 3 && !healed; i++ {
		res, err := fx.engine.Process(im, nil)
		if err != nil {
			t.Fatal(err)
		}
		healed = res.Label == drifted
	}
	if !healed {
		t.Fatalf("engine still serving stale label after heal window")
	}
	snap, ok := fx.engine.QualitySnapshot()
	if !ok || snap.LiveAccuracy >= 1 {
		t.Fatalf("refutes did not dent the live-accuracy estimate: %+v", snap)
	}
}

// TestAuditsRaceInsertsEvictions drives concurrent sessions over a
// tiny store (constant eviction churn) with asynchronous audits and a
// classifier that drifts mid-run, under -race: audits, heals, paroles,
// inserts, and evictions all interleave. The auditor must neither race
// nor leak its goroutines.
func TestAuditsRaceInsertsEvictions(t *testing.T) {
	checkLeak := testutil.LeakGuard(t, 2)
	fx := newQualityFixture(t, QualityConfig{
		Enabled: true, AuditSampleEvery: 1, MaxPending: 8,
	})
	frames := make([]*vision.Image, 6)
	for i := range frames {
		im, err := fx.classes.Prototype(i)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = im
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				im := frames[(w+i)%len(frames)]
				if _, err := fx.engine.Process(im, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Drift arrives while the streams are mid-flight.
	time.Sleep(time.Millisecond)
	if err := fx.faulty.SetFaultPlan(dnn.FaultPlan{{
		From: fx.faulty.Calls(), To: 1 << 30, Kind: dnn.FaultDrift,
		Relabel: dnn.ShiftRelabel(2, fx.classes.NumClasses()),
	}}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	fx.engine.DrainAudits()
	if audits, _ := fx.engine.Stats().Audits(); audits == 0 {
		t.Fatal("no audits ran during the stress")
	}
	checkLeak()
}
