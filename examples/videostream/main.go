// Videostream: continuous live-video recognition across changing motion
// regimes, showing how each reuse gate (inertial, video locality, local
// cache) takes over as the user stops, pans, and walks.
//
// Run with: go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"time"

	"approxcache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// dominantActivity formats the most frequently inferred activity and
// its share of the phase's frames.
func dominantActivity(counts map[string]int, frames int) string {
	best, n := "unknown", 0
	for name, c := range counts {
		if c > n {
			best, n = name, c
		}
	}
	if n == 0 || frames == 0 {
		return "unknown"
	}
	return fmt.Sprintf("%s (%d%%)", best, n*100/frames)
}

func run() error {
	// A camera session with distinct phases: examine an object, pan
	// across the room, walk to the next room, examine again.
	spec := approxcache.WorkloadSpec{
		Name:       "camera-session",
		FPS:        15,
		IMURateHz:  100,
		NumClasses: 10,
		ImageW:     48,
		ImageH:     48,
		Segments: []approxcache.SegmentSpec{
			{Regime: "stationary", Frames: 150},
			{Regime: "panning", Frames: 120},
			{Regime: "walking", Frames: 120},
			{Regime: "handheld", Frames: 150},
		},
		Seed: 7,
	}
	workload, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		return err
	}
	classifier, err := approxcache.NewSimulatedClassifier(approxcache.InceptionV3, workload, 7)
	if err != nil {
		return err
	}
	cache, err := approxcache.New(classifier, approxcache.Options{
		Clock: approxcache.NewVirtualClock(),
	})
	if err != nil {
		return err
	}

	// Track per-phase behaviour to show the gates trading off, and run
	// the activity classifier alongside to show the device can infer
	// its own motion context from raw IMU data.
	activity, err := approxcache.NewActivityClassifier()
	if err != nil {
		return err
	}
	type phase struct {
		name     string
		sources  map[approxcache.Source]int
		inferred map[string]int
		latency  time.Duration
		frames   int
	}
	phases := []*phase{}
	var cur *phase
	lastRegime := approxcache.MotionRegime(0)

	prev := time.Duration(0)
	for _, frame := range workload.Frames {
		if frame.Regime != lastRegime {
			cur = &phase{
				name:     frame.Regime.String(),
				sources:  map[approxcache.Source]int{},
				inferred: map[string]int{},
			}
			phases = append(phases, cur)
			lastRegime = frame.Regime
		}
		win := workload.IMUWindow(prev, frame.Offset)
		prev = frame.Offset
		activity.ObserveAll(win)
		if regime, _ := activity.Classify(); regime != 0 {
			cur.inferred[regime.String()]++
		}
		res, err := cache.ProcessWithTruth(frame.Image, win, approxcache.LabelOf(frame.Class))
		if err != nil {
			return err
		}
		cur.sources[res.Source]++
		cur.latency += res.Latency
		cur.frames++
	}

	fmt.Printf("%-12s %8s %8s %8s %8s %8s %12s  %s\n",
		"phase", "imu", "video", "local", "peer", "dnn", "mean-latency", "inferred-activity")
	for _, p := range phases {
		fmt.Printf("%-12s %8d %8d %8d %8d %8d %12v  %s\n",
			p.name,
			p.sources[approxcache.SourceIMU],
			p.sources[approxcache.SourceVideo],
			p.sources[approxcache.SourceLocal],
			p.sources[approxcache.SourcePeer],
			p.sources[approxcache.SourceDNN],
			(p.latency / time.Duration(p.frames)).Round(10*time.Microsecond),
			dominantActivity(p.inferred, p.frames))
	}
	stats := cache.Stats()
	fmt.Printf("\noverall: hit rate %.1f%%, accuracy %.1f%%, mean latency %v (InceptionV3 alone: %v)\n",
		stats.HitRate()*100, stats.Accuracy()*100,
		stats.Latency().Mean().Round(10*time.Microsecond),
		approxcache.InceptionV3.MeanLatency)
	return nil
}
