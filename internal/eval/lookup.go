package eval

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
)

// The lookup-bound benchmark: a warm, heavily reused cache where the
// serving cost is the index lookup itself, not the DNN. The E20
// throughput benchmark is inference-bound by design (misses occupy a
// serial accelerator), which makes store/index wins invisible — sharded
// and single-mutex nodes post the same fps because both are waiting on
// the model. This harness removes the model entirely: it builds the
// index at cache steady state, drives queries that are small
// perturbations of resident entries (the approximate-caching hit case),
// and measures ns/op, recall against exact ground truth, and warm-path
// allocations for two index configurations:
//
//   - base:  the classic exact-bucket pipeline at bits × T tables;
//   - tuned: the multi-probe + sketch + quantized pipeline at T/2
//     tables, the configuration the tentpole claims reaches the same
//     recall for less arithmetic.
//
// The report is written to BENCH_lookup.json and enforced by
// cmd/benchgate's lookup gate: tuned must beat base by a minimum ns/op
// ratio at equal-or-better recall with zero warm-path allocations.

// LookupConfig shapes the lookup-bound benchmark.
type LookupConfig struct {
	// Entries is the resident cache population (default 4096).
	Entries int
	// Dim is the feature dimensionality (default 80, matching the
	// production extractor).
	Dim int
	// Clusters is the number of scene clusters the population is drawn
	// from (default 64): entries within a cluster are near-duplicates,
	// reproducing the crowded buckets of a high-reuse cache.
	Clusters int
	// Queries is the number of distinct query vectors (default 256),
	// each a small perturbation of a resident entry — the hit-heavy
	// access pattern.
	Queries int
	// K is the kNN width (default 4, the homogenized-vote width).
	K int
	// Bits is the per-table signature width (default 12).
	Bits int
	// Tables is the BASE table count (default 4); the tuned
	// configuration runs Tables/2.
	Tables int
	// Probes is the tuned configuration's per-table probe count
	// (default 3 — the ns/op sweet spot on this workload; more probes
	// buy recall the workload already saturates while flooding the
	// candidate stage, and the probe sweep in the eval suite shows
	// recall holds from 2 probes up).
	Probes int
	// Reps is how many timed passes over the query set each
	// configuration gets (default 30).
	Reps int
	// ClusterSigma is the per-dimension spread of entries around their
	// cluster center (default 0.02 — near-duplicate scenes).
	ClusterSigma float64
	// QuerySigma is the per-dimension perturbation between a query and
	// the resident entry it reuses (default 0.01).
	QuerySigma float64
	// Seed anchors all randomness.
	Seed int64
}

func (c *LookupConfig) defaults() {
	if c.Entries == 0 {
		c.Entries = 4096
	}
	if c.Dim == 0 {
		c.Dim = 80
	}
	if c.Clusters == 0 {
		c.Clusters = 64
	}
	if c.Queries == 0 {
		c.Queries = 256
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Bits == 0 {
		c.Bits = 12
	}
	if c.Tables == 0 {
		c.Tables = 4
	}
	if c.Probes == 0 {
		c.Probes = 3
	}
	if c.Reps == 0 {
		c.Reps = 30
	}
	if c.ClusterSigma == 0 {
		c.ClusterSigma = 0.02
	}
	if c.QuerySigma == 0 {
		c.QuerySigma = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// LookupResult is one index configuration's measurement.
type LookupResult struct {
	Name       string  `json:"name"`
	Tables     int     `json:"tables"`
	Probes     int     `json:"probes"`
	SketchBits int     `json:"sketch_bits"`
	Quantize   bool    `json:"quantize"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Recall is the fraction of exact top-k neighbors the
	// configuration returned, averaged over all queries.
	Recall float64 `json:"recall"`
	// AllocsPerOp is the measured warm-path heap allocations per
	// lookup (gated to 0).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Candidates is the mean candidate-set size per query (post
	// prefilter for the tuned configuration).
	Candidates float64 `json:"candidates"`
}

// LookupReport is the full benchmark outcome, serialized to
// BENCH_lookup.json and gated by cmd/benchgate.
type LookupReport struct {
	Entries int            `json:"entries"`
	Dim     int            `json:"dim"`
	Queries int            `json:"queries"`
	K       int            `json:"k"`
	Bits    int            `json:"bits"`
	Results []LookupResult `json:"results"`
	// Speedup is base ns/op over tuned ns/op — the number the
	// regression gate enforces.
	Speedup float64 `json:"speedup"`
	// RecallBase/RecallTuned restate the two recalls the gate compares.
	RecallBase  float64 `json:"recall_base"`
	RecallTuned float64 `json:"recall_tuned"`
}

// lookupDataset is the shared population + query set + exact ground
// truth all configurations are measured against.
type lookupDataset struct {
	vecs    []feature.Vector
	queries []feature.Vector
	truth   [][]lsh.ID // exact top-k IDs per query
}

func buildLookupDataset(cfg LookupConfig) (*lookupDataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]feature.Vector, cfg.Clusters)
	for c := range centers {
		centers[c] = make(feature.Vector, cfg.Dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() // all-positive, like image descriptors
		}
	}
	ds := &lookupDataset{vecs: make([]feature.Vector, cfg.Entries)}
	for i := range ds.vecs {
		center := centers[i%cfg.Clusters]
		v := make(feature.Vector, cfg.Dim)
		for d := range v {
			v[d] = center[d] + rng.NormFloat64()*cfg.ClusterSigma
		}
		ds.vecs[i] = v
	}
	// Queries perturb resident entries: the hit-heavy case where the
	// nearest neighbor is the reused cached result.
	ds.queries = make([]feature.Vector, cfg.Queries)
	for i := range ds.queries {
		src := ds.vecs[rng.Intn(cfg.Entries)]
		q := make(feature.Vector, cfg.Dim)
		for d := range q {
			q[d] = src[d] + rng.NormFloat64()*cfg.QuerySigma
		}
		ds.queries[i] = q
	}
	exact, err := lsh.NewExact(cfg.Dim)
	if err != nil {
		return nil, err
	}
	for i, v := range ds.vecs {
		if err := exact.Insert(lsh.ID(i), v); err != nil {
			return nil, err
		}
	}
	ds.truth = make([][]lsh.ID, cfg.Queries)
	for i, q := range ds.queries {
		nn, err := exact.Nearest(q, cfg.K)
		if err != nil {
			return nil, err
		}
		ids := make([]lsh.ID, len(nn))
		for j, n := range nn {
			ids[j] = n.ID
		}
		ds.truth[i] = ids
	}
	return ds, nil
}

// measureLookup loads ds into idx and measures recall, warm
// allocations, and mean candidate-set size. Timing happens separately
// in timeLookupPair so both configurations sample the same machine
// conditions.
func measureLookup(cfg LookupConfig, ds *lookupDataset, idx *lsh.HyperplaneIndex) (LookupResult, error) {
	for i, v := range ds.vecs {
		if err := idx.Insert(lsh.ID(i), v); err != nil {
			return LookupResult{}, err
		}
	}
	buf := make([]lsh.Neighbor, 0, cfg.K)
	idBuf := make([]lsh.ID, 0, cfg.Entries)

	// Recall + candidate stats (untimed pass).
	var hits, want, cands int
	for i, q := range ds.queries {
		nn, err := idx.NearestInto(q, cfg.K, buf)
		if err != nil {
			return LookupResult{}, err
		}
		for _, t := range ds.truth[i] {
			want++
			for _, n := range nn {
				if n.ID == t {
					hits++
					break
				}
			}
		}
		ids, err := idx.CandidatesInto(q, idBuf)
		if err != nil {
			return LookupResult{}, err
		}
		cands += len(ids)
	}

	// Warm-path allocations: the pass above warmed every pool; a
	// steady-state lookup must not allocate.
	q0 := ds.queries[0]
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := idx.NearestInto(q0, cfg.K, buf); err != nil {
			panic(err)
		}
	})

	tun := idx.TuningConfig()
	return LookupResult{
		Tables:      idx.Tables(),
		Probes:      tun.Probes,
		SketchBits:  tun.SketchBits,
		Quantize:    tun.Quantize,
		Recall:      float64(hits) / float64(want),
		AllocsPerOp: allocs,
		Candidates:  float64(cands) / float64(len(ds.queries)),
	}, nil
}

// timeLookupPair runs the timed passes for both configurations in
// strict alternation. The per-op figure is the MINIMUM over passes:
// each pass is hundreds of lookups (long enough to average
// micro-jitter), and the minimum discards passes inflated by transient
// machine load. Alternating a/b within each rep matters as much as the
// min: machine throughput drifts on a seconds scale, and alternation
// guarantees both configurations sample the same windows, so the
// RATIO — the number the gate enforces — stays stable even when
// absolute timings wander.
func timeLookupPair(cfg LookupConfig, ds *lookupDataset, a, b *lsh.HyperplaneIndex) (nsA, nsB float64, err error) {
	buf := make([]lsh.Neighbor, 0, cfg.K)
	pass := func(idx *lsh.HyperplaneIndex) (time.Duration, error) {
		start := time.Now()
		for _, q := range ds.queries {
			if _, err := idx.NearestInto(q, cfg.K, buf); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	const maxDur = time.Duration(1<<63 - 1)
	bestA, bestB := maxDur, maxDur
	for rep := 0; rep < cfg.Reps; rep++ {
		da, err := pass(a)
		if err != nil {
			return 0, 0, err
		}
		db, err := pass(b)
		if err != nil {
			return 0, 0, err
		}
		if da < bestA {
			bestA = da
		}
		if db < bestB {
			bestB = db
		}
	}
	n := float64(len(ds.queries))
	return float64(bestA.Nanoseconds()) / n, float64(bestB.Nanoseconds()) / n, nil
}

// RunLookup measures the base and tuned index configurations over the
// same dataset and computes the headline speedup.
func RunLookup(cfg LookupConfig) (LookupReport, error) {
	cfg.defaults()
	ds, err := buildLookupDataset(cfg)
	if err != nil {
		return LookupReport{}, err
	}
	rep := LookupReport{
		Entries: cfg.Entries,
		Dim:     cfg.Dim,
		Queries: cfg.Queries,
		K:       cfg.K,
		Bits:    cfg.Bits,
	}

	// Both configurations run the production default: uncentered
	// hyperplanes over all-positive descriptors. Their shared mean
	// correlates table signatures, so buckets are crowded with
	// cross-cluster junk — exactly the regime the sketch prefilter and
	// quantized scoring exist for (the sketch's zero-sum hyperplanes
	// are immune to the uniform-offset component that crowds the
	// tables).
	base, err := lsh.NewHyperplane(cfg.Dim, cfg.Bits, cfg.Tables, cfg.Seed)
	if err != nil {
		return LookupReport{}, err
	}
	baseRes, err := measureLookup(cfg, ds, base)
	if err != nil {
		return LookupReport{}, fmt.Errorf("base: %w", err)
	}
	baseRes.Name = "exact-bucket"
	rep.Results = append(rep.Results, baseRes)

	tuning := lsh.DefaultTuning()
	tuning.Probes = cfg.Probes
	// Widen the re-rank so quantization noise among a crowded cluster
	// of near-duplicates cannot push a true neighbor out of the exact
	// stage, and tighten the Hamming cut below the conservative
	// default: near-duplicate neighbors land within a handful of
	// sketch bits, while cross-cluster junk sits near bits/2, so 16/64
	// still clears true neighbors by several sigma while rejecting
	// most of the crowd before any integer math.
	tuning.RerankK = 16
	tuning.MaxHamming = 16
	tunedTables := cfg.Tables / 2
	if tunedTables < 1 {
		tunedTables = 1
	}
	tuned, err := lsh.NewHyperplaneTuned(cfg.Dim, cfg.Bits, tunedTables, cfg.Seed, tuning)
	if err != nil {
		return LookupReport{}, err
	}
	tunedRes, err := measureLookup(cfg, ds, tuned)
	if err != nil {
		return LookupReport{}, fmt.Errorf("tuned: %w", err)
	}
	tunedRes.Name = "multiprobe-sketch-quant"

	baseRes.NsPerOp, tunedRes.NsPerOp, err = timeLookupPair(cfg, ds, base, tuned)
	if err != nil {
		return LookupReport{}, err
	}
	rep.Results[0] = baseRes
	rep.Results = append(rep.Results, tunedRes)

	if tunedRes.NsPerOp > 0 {
		rep.Speedup = baseRes.NsPerOp / tunedRes.NsPerOp
	}
	rep.RecallBase = baseRes.Recall
	rep.RecallTuned = tunedRes.Recall
	return rep, nil
}

// E22Lookup is the lookup-bound experiment: the before/after table for
// the multi-probe + sketch + quantized candidate pipeline.
func E22Lookup(scale Scale) (Report, error) {
	cfg := LookupConfig{Seed: scale.Seed}
	if scale.Frames < DefaultScale().Frames {
		// Small scale: a quarter-size population, same pipeline shapes.
		cfg.Entries = 1024
		cfg.Queries = 128
		cfg.Reps = 8
	}
	cfg.defaults() // so the notes below report the effective shape
	rep, err := RunLookup(cfg)
	if err != nil {
		return Report{}, err
	}
	out := Report{
		ID:    "E22",
		Title: "Lookup-bound candidate pipeline: exact-bucket vs multi-probe + sketch + quantized",
		Headers: []string{"pipeline", "tables", "probes", "sketch", "ns/op",
			"recall@k", "candidates", "allocs/op"},
	}
	for _, r := range rep.Results {
		sketch := "-"
		if r.SketchBits > 0 {
			sketch = fmt.Sprintf("%db+int8", r.SketchBits)
		}
		out.Rows = append(out.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Tables), fmt.Sprintf("%d", r.Probes),
			sketch, fmtF(r.NsPerOp), fmtPct(r.Recall),
			fmtF(r.Candidates), fmt.Sprintf("%.0f", r.AllocsPerOp),
		})
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("%d entries (%d clusters) × %d hit-heavy queries, dim %d, k=%d",
			rep.Entries, cfg.Clusters, rep.Queries, rep.Dim, rep.K),
		fmt.Sprintf("speedup tuned vs base: %.2fx at recall %.3f vs %.3f",
			rep.Speedup, rep.RecallTuned, rep.RecallBase),
	)
	return out, nil
}
