// Package p2p implements the infrastructure-less peer-to-peer reuse
// protocol: nearby devices answer approximate cache queries for each
// other and gossip fresh recognition results so the collaborative cache
// warms up.
//
// The protocol is transport-agnostic. Two transports are provided: a
// simulated wireless network (internal/simnet) for deterministic
// experiments, and a real TCP transport for live nodes
// (cmd/cachenode, examples/livepeers).
package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"approxcache/internal/feature"
)

// Kind discriminates wire messages.
type Kind uint8

// Wire message kinds.
const (
	KindQuery Kind = iota + 1
	KindQueryResp
	KindGossip
	KindAck
	KindPing
	KindPong
	KindDigestReq
	KindDigestResp
	// v2-only kinds: these have no v1 encoding and are only sent to
	// peers that negotiated wire v2.
	KindDigestDeltaReq
	KindDigestDeltaResp
	KindGossipBatch
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindQueryResp:
		return "query-resp"
	case KindGossip:
		return "gossip"
	case KindAck:
		return "ack"
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindDigestReq:
		return "digest-req"
	case KindDigestResp:
		return "digest-resp"
	case KindDigestDeltaReq:
		return "digest-delta-req"
	case KindDigestDeltaResp:
		return "digest-delta-resp"
	case KindGossipBatch:
		return "gossip-batch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is any wire message.
type Message interface {
	// MsgKind returns the message's wire discriminator.
	MsgKind() Kind
}

// Query asks a peer to look up Vec in its approximate cache.
type Query struct {
	// Vec is the query feature vector.
	Vec feature.Vector
	// K is how many neighbors the peer should consider in its vote.
	K uint8
}

// MsgKind implements Message.
func (Query) MsgKind() Kind { return KindQuery }

// QueryResp answers a Query.
type QueryResp struct {
	// Found reports whether the peer's vote accepted a cached label.
	Found bool
	// Label is the cached label (valid only when Found).
	Label string
	// Confidence is the peer's vote confidence.
	Confidence float64
	// Distance is the best supporting neighbor's distance; the
	// requester uses it to pick the best answer across peers.
	Distance float64
}

// MsgKind implements Message.
func (QueryResp) MsgKind() Kind { return KindQueryResp }

// Gossip shares one fresh recognition result with a peer.
type Gossip struct {
	Vec        feature.Vector
	Label      string
	Confidence float64
	// SavedCost is the inference cost the entry avoids, used by
	// cost-aware eviction at the receiver.
	SavedCost time.Duration
}

// MsgKind implements Message.
func (Gossip) MsgKind() Kind { return KindGossip }

// Ack acknowledges a Gossip.
type Ack struct{}

// MsgKind implements Message.
func (Ack) MsgKind() Kind { return KindAck }

// Ping probes a peer's liveness.
type Ping struct {
	// From identifies the sender.
	From string
}

// MsgKind implements Message.
func (Ping) MsgKind() Kind { return KindPing }

// Pong answers a Ping.
type Pong struct {
	// From identifies the responder.
	From string
	// Entries is the responder's current cache size, advertised so
	// requesters can prefer warm peers.
	Entries uint32
}

// MsgKind implements Message.
func (Pong) MsgKind() Kind { return KindPong }

// Codec errors.
var (
	// ErrTruncated is returned when a payload ends mid-field.
	ErrTruncated = errors.New("p2p: truncated message")
	// ErrUnknownKind is returned for unrecognized discriminators.
	ErrUnknownKind = errors.New("p2p: unknown message kind")
)

// MaxVectorDim bounds decoded vector sizes as a hostile-input guard.
const MaxVectorDim = 4096

// MaxLabelLen bounds decoded label sizes.
const MaxLabelLen = 256

// Encode serializes m into a compact binary payload. It is a thin
// wrapper over AppendEncode with a fresh buffer; hot paths pass a
// pooled buffer to AppendEncode instead.
func Encode(m Message) ([]byte, error) {
	return AppendEncode(nil, m)
}

// AppendEncode appends m's wire encoding to buf and returns the
// extended buffer (which may have been reallocated, as with append).
// Classic kinds use the v1 framing — a kind byte followed by
// fixed-width big-endian fields, vectors as a uint16 length plus
// float64s, strings as a uint16 length plus raw bytes — so any peer can
// decode them. The v2-only kinds (delta digests, gossip batches) have
// no v1 form and are emitted in v2 framing; use AppendEncodeV2 to force
// v2 framing for a negotiated peer.
func AppendEncode(b []byte, m Message) ([]byte, error) {
	switch v := m.(type) {
	case Query:
		b = append(b, byte(KindQuery), v.K)
		return appendVec(b, v.Vec)
	case QueryResp:
		b = append(b, byte(KindQueryResp), boolByte(v.Found))
		b, err := appendString(b, v.Label)
		if err != nil {
			return nil, err
		}
		b = appendFloat(b, v.Confidence)
		b = appendFloat(b, v.Distance)
		return b, nil
	case Gossip:
		b = append(b, byte(KindGossip))
		b, err := appendVec(b, v.Vec)
		if err != nil {
			return nil, err
		}
		b, err = appendString(b, v.Label)
		if err != nil {
			return nil, err
		}
		b = appendFloat(b, v.Confidence)
		b = binary.BigEndian.AppendUint64(b, uint64(v.SavedCost))
		return b, nil
	case Ack:
		return append(b, byte(KindAck)), nil
	case Ping:
		b = append(b, byte(KindPing))
		return appendString(b, v.From)
	case Pong:
		b = append(b, byte(KindPong))
		b, err := appendString(b, v.From)
		if err != nil {
			return nil, err
		}
		return binary.BigEndian.AppendUint32(b, v.Entries), nil
	case DigestReq:
		return append(b, byte(KindDigestReq)), nil
	case DigestResp:
		b = append(b, byte(KindDigestResp))
		return encodeDigest(b, v.Digest)
	case DigestDeltaReq, DigestDeltaResp, GossipBatch:
		return AppendEncodeV2(b, m)
	default:
		return nil, fmt.Errorf("p2p: cannot encode %T", m)
	}
}

// Decode parses a payload produced by AppendEncode or AppendEncodeV2,
// dispatching on the framing: a leading wireV2Marker selects the v2
// codec, anything else is a v1 kind byte.
func Decode(b []byte) (Message, error) {
	m, _, err := DecodeWire(b)
	return m, err
}

// DecodeWire is Decode plus the frame's wire version, so services can
// answer in the requester's dialect.
func DecodeWire(b []byte) (Message, int, error) {
	if len(b) == 0 {
		return nil, 0, ErrTruncated
	}
	if b[0] == wireV2Marker {
		m, err := decodeV2(b[1:])
		return m, WireV2, err
	}
	m, err := decodeV1(b)
	return m, WireV1, err
}

// decodeV1 parses a v1-framed payload.
func decodeV1(b []byte) (Message, error) {
	kind, rest := Kind(b[0]), b[1:]
	switch kind {
	case KindQuery:
		if len(rest) < 1 {
			return nil, ErrTruncated
		}
		k := rest[0]
		vec, rest, err := readVec(rest[1:])
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Query{Vec: vec, K: k}, nil
	case KindQueryResp:
		if len(rest) < 1 {
			return nil, ErrTruncated
		}
		found := rest[0] != 0
		label, rest, err := readString(rest[1:])
		if err != nil {
			return nil, err
		}
		conf, rest, err := readFloat(rest)
		if err != nil {
			return nil, err
		}
		dist, rest, err := readFloat(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return QueryResp{Found: found, Label: label, Confidence: conf, Distance: dist}, nil
	case KindGossip:
		vec, rest, err := readVec(rest)
		if err != nil {
			return nil, err
		}
		label, rest, err := readString(rest)
		if err != nil {
			return nil, err
		}
		conf, rest, err := readFloat(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8 {
			return nil, ErrTruncated
		}
		cost := time.Duration(binary.BigEndian.Uint64(rest))
		if err := expectEmpty(rest[8:]); err != nil {
			return nil, err
		}
		return Gossip{Vec: vec, Label: label, Confidence: conf, SavedCost: cost}, nil
	case KindAck:
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Ack{}, nil
	case KindPing:
		from, rest, err := readString(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return Ping{From: from}, nil
	case KindPong:
		from, rest, err := readString(rest)
		if err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, ErrTruncated
		}
		entries := binary.BigEndian.Uint32(rest)
		if err := expectEmpty(rest[4:]); err != nil {
			return nil, err
		}
		return Pong{From: from, Entries: entries}, nil
	case KindDigestReq:
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return DigestReq{}, nil
	case KindDigestResp:
		d, rest, err := decodeDigest(rest)
		if err != nil {
			return nil, err
		}
		if err := expectEmpty(rest); err != nil {
			return nil, err
		}
		return DigestResp{Digest: d}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(kind))
	}
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func readFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

func appendVec(b []byte, v feature.Vector) ([]byte, error) {
	if len(v) > MaxVectorDim {
		return nil, fmt.Errorf("p2p: vector dim %d exceeds %d", len(v), MaxVectorDim)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(v)))
	for _, x := range v {
		b = appendFloat(b, x)
	}
	return b, nil
}

func readVec(b []byte) (feature.Vector, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > MaxVectorDim {
		return nil, nil, fmt.Errorf("p2p: vector dim %d exceeds %d", n, MaxVectorDim)
	}
	if len(b) < n*8 {
		return nil, nil, ErrTruncated
	}
	v := make(feature.Vector, n)
	for i := 0; i < n; i++ {
		v[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	return v, b[n*8:], nil
}

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > MaxLabelLen {
		return nil, fmt.Errorf("p2p: string length %d exceeds %d", len(s), MaxLabelLen)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > MaxLabelLen {
		return "", nil, fmt.Errorf("p2p: string length %d exceeds %d", n, MaxLabelLen)
	}
	if len(b) < n {
		return "", nil, ErrTruncated
	}
	return string(b[:n]), b[n:], nil
}

func expectEmpty(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("p2p: %d trailing bytes", len(b))
	}
	return nil
}
