package lsh

// Differential tests pinning the arena-based index to the map-based
// implementation it replaced. refIndex below is a faithful copy of the
// old data structures and algorithms (per-plane vectors, map buckets,
// map dedup, full sort.Slice ranking). Because the rewrite preserved
// hyperplane RNG draw order and every floating-point accumulation
// order, results must match bit for bit, not just approximately.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"approxcache/internal/feature"
)

type refIndex struct {
	dim, bits, tables int
	planes            [][]feature.Vector // [table][bit]
	center            feature.Vector
	buckets           []map[uint64][]ID
	vecs              map[ID]feature.Vector
	sigs              map[ID][]uint64
}

func newRefIndex(dim, bits, tables int, seed int64, center feature.Vector) *refIndex {
	rng := rand.New(rand.NewSource(seed))
	x := &refIndex{
		dim:     dim,
		bits:    bits,
		tables:  tables,
		planes:  make([][]feature.Vector, tables),
		buckets: make([]map[uint64][]ID, tables),
		vecs:    make(map[ID]feature.Vector),
		sigs:    make(map[ID][]uint64),
	}
	for t := 0; t < tables; t++ {
		x.planes[t] = make([]feature.Vector, bits)
		x.buckets[t] = make(map[uint64][]ID)
		for b := 0; b < bits; b++ {
			p := make(feature.Vector, dim)
			for d := 0; d < dim; d++ {
				p[d] = rng.NormFloat64()
			}
			x.planes[t][b] = p
		}
	}
	if center != nil {
		x.center = center.Clone()
	}
	return x
}

func (x *refIndex) signature(t int, v feature.Vector) uint64 {
	var sig uint64
	for b, plane := range x.planes[t] {
		var dot float64
		if x.center == nil {
			for d := range plane {
				dot += plane[d] * v[d]
			}
		} else {
			for d := range plane {
				dot += plane[d] * (v[d] - x.center[d])
			}
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

func (x *refIndex) insert(id ID, v feature.Vector) {
	vc := v.Clone()
	if _, exists := x.vecs[id]; exists {
		x.remove(id)
	}
	sigs := make([]uint64, x.tables)
	for t := 0; t < x.tables; t++ {
		sig := x.signature(t, vc)
		sigs[t] = sig
		x.buckets[t][sig] = append(x.buckets[t][sig], id)
	}
	x.vecs[id] = vc
	x.sigs[id] = sigs
}

func (x *refIndex) remove(id ID) {
	sigs, ok := x.sigs[id]
	if !ok {
		return
	}
	for t, sig := range sigs {
		bucket := x.buckets[t][sig]
		for i, bid := range bucket {
			if bid == id {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(x.buckets[t], sig)
		} else {
			x.buckets[t][sig] = bucket
		}
	}
	delete(x.vecs, id)
	delete(x.sigs, id)
}

func (x *refIndex) candidates(q feature.Vector) []ID {
	seen := make(map[ID]struct{})
	var out []ID
	for t := 0; t < x.tables; t++ {
		sig := x.signature(t, q)
		for _, id := range x.buckets[t][sig] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

func (x *refIndex) nearest(q feature.Vector, k int) []Neighbor {
	cands := x.candidates(q)
	ns := make([]Neighbor, 0, len(cands))
	for _, id := range cands {
		ns = append(ns, Neighbor{ID: id, Distance: feature.MustEuclidean(q, x.vecs[id])})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Distance != ns[j].Distance {
			return ns[i].Distance < ns[j].Distance
		}
		return ns[i].ID < ns[j].ID
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

func randVec(rng *rand.Rand, dim int) feature.Vector {
	v := make(feature.Vector, dim)
	for d := range v {
		v[d] = rng.NormFloat64()
	}
	return v
}

func diffWorkload(t *testing.T, center feature.Vector) {
	t.Helper()
	const (
		dim    = 16
		bits   = 6
		tables = 3
		seed   = 99
		ops    = 4000
	)
	var arena *HyperplaneIndex
	var err error
	if center == nil {
		arena, err = NewHyperplane(dim, bits, tables, seed)
	} else {
		arena, err = NewHyperplaneCentered(dim, bits, tables, seed, center)
	}
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefIndex(dim, bits, tables, seed, center)

	rng := rand.New(rand.NewSource(1234))
	var live []ID
	nextID := ID(0)
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.45: // insert new
			id := nextID
			nextID++
			v := randVec(rng, dim)
			if err := arena.Insert(id, v); err != nil {
				t.Fatal(err)
			}
			ref.insert(id, v)
			live = append(live, id)
		case r < 0.55 && len(live) > 0: // re-insert existing id
			id := live[rng.Intn(len(live))]
			v := randVec(rng, dim)
			if err := arena.Insert(id, v); err != nil {
				t.Fatal(err)
			}
			ref.insert(id, v)
		case r < 0.75 && len(live) > 0: // remove
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			arena.Remove(id)
			ref.remove(id)
		default: // query
			q := randVec(rng, dim)
			k := 1 + rng.Intn(8)
			if rng.Float64() < 0.1 {
				k = 40 + rng.Intn(30) // exercise the heap selector too
			}
			got, err := arena.Nearest(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.nearest(q, k)
			if len(got) != len(want) {
				t.Fatalf("op %d: got %d neighbors, want %d", op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d neighbor %d: got %+v, want %+v", op, i, got[i], want[i])
				}
			}
			gotC, err := arena.Candidates(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDSet(gotC, ref.candidates(q)) {
				t.Fatalf("op %d: candidate sets differ", op)
			}
		}
		if arena.Len() != len(ref.vecs) {
			t.Fatalf("op %d: arena Len %d, ref %d", op, arena.Len(), len(ref.vecs))
		}
	}
}

func sameIDSet(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[ID]struct{}, len(a))
	for _, id := range a {
		set[id] = struct{}{}
	}
	for _, id := range b {
		if _, ok := set[id]; !ok {
			return false
		}
	}
	return true
}

func TestDifferentialVsReference(t *testing.T) {
	diffWorkload(t, nil)
}

func TestDifferentialVsReferenceCentered(t *testing.T) {
	center := make(feature.Vector, 16)
	for d := range center {
		center[d] = 0.5
	}
	diffWorkload(t, center)
}

// TestDifferentialSignatureChains pins the interleaved signature
// computation to the one-row-at-a-time reference across bit widths that
// exercise both the 4-wide chains and the remainder loop.
func TestDifferentialSignatureChains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, bits := range []int{1, 2, 3, 4, 5, 7, 8, 11, 12, 17, 64} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			const dim = 33
			arena, err := NewHyperplane(dim, bits, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefIndex(dim, bits, 2, 7, nil)
			for i := 0; i < 50; i++ {
				v := randVec(rng, dim)
				for tb := 0; tb < 2; tb++ {
					if got, want := arena.signature(tb, v), ref.signature(tb, v); got != want {
						t.Fatalf("table %d vec %d: signature %x, want %x", tb, i, got, want)
					}
				}
			}
		})
	}
}
