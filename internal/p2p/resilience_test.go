package p2p

import (
	"errors"
	"sync"
	"testing"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

// newResilientCluster is newSimCluster with the client's breaker driven
// by a virtual clock, so tests can heal circuits by advancing time.
func newResilientCluster(t *testing.T, n int) (*Client, []*Service, *simnet.Network, *simclock.Virtual) {
	t.Helper()
	net, err := simnet.New(simnet.LinkProfile{
		Latency: 5 * time.Millisecond, BandwidthBps: 1 << 20,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]*Service, n)
	peerNames := make([]string, n)
	for i := 0; i < n; i++ {
		name := "peer-" + string(rune('a'+i))
		svc, err := NewService(DefaultServiceConfig(name), newStore(t, 32))
		if err != nil {
			t.Fatal(err)
		}
		if err := RegisterService(net, svc); err != nil {
			t.Fatal(err)
		}
		services[i] = svc
		peerNames[i] = name
	}
	tr, err := NewSimnetTransport("self", net)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	cfg := DefaultClientConfig()
	cfg.Clock = clock
	cl, err := NewClient(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers(peerNames)
	return cl, services, net, clock
}

// countObserver tallies resilience events.
type countObserver struct {
	mu                          sync.Mutex
	timeouts, trips, recoveries int
}

func (o *countObserver) PeerTimeout(string) { o.mu.Lock(); o.timeouts++; o.mu.Unlock() }
func (o *countObserver) BreakerTrip(string) { o.mu.Lock(); o.trips++; o.mu.Unlock() }
func (o *countObserver) BreakerRecovery(string) {
	o.mu.Lock()
	o.recoveries++
	o.mu.Unlock()
}

func TestClientBreakerExcludesCrashedPeer(t *testing.T) {
	cl, services, net, _ := newResilientCluster(t, 2)
	if _, err := services[1].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.SetDeadCost(100 * time.Millisecond)
	net.Crash("peer-a")

	// Three queries trip peer-a's circuit (FailureThreshold = 3); each
	// still succeeds through peer-b.
	for i := 0; i < 3; i++ {
		out, err := cl.QueryFrame(feature.Vector{1, 0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Queried != 2 || !out.Found {
			t.Fatalf("query %d: %+v", i, out)
		}
		// The dead peer's radio timeout dominates the frame cost.
		if out.Cost != 100*time.Millisecond {
			t.Fatalf("query %d cost = %v, want dead cost", i, out.Cost)
		}
	}
	if got := cl.Breaker().State("peer-a"); got != StateOpen {
		t.Fatalf("peer-a state = %v, want open", got)
	}

	// With the circuit open the dead peer is excluded: only peer-b is
	// asked and the frame no longer pays the dead cost.
	out, err := cl.QueryFrame(feature.Vector{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Queried != 1 || !out.Found || out.Hit.Peer != "peer-b" {
		t.Fatalf("post-trip query: %+v", out)
	}
	if out.Cost >= 100*time.Millisecond {
		t.Fatalf("post-trip cost %v still pays dead peer", out.Cost)
	}

	snap := cl.Health()
	if snap.Trips != 1 || snap.Recoveries != 0 {
		t.Fatalf("trips/recoveries = %d/%d", snap.Trips, snap.Recoveries)
	}
	if snap.Degraded {
		t.Fatal("degraded with a healthy peer remaining")
	}
}

func TestClientDegradedWhenAllPeersOpen(t *testing.T) {
	cl, _, net, _ := newResilientCluster(t, 1)
	net.Crash("peer-a")
	for i := 0; i < 3; i++ {
		if _, err := cl.QueryFrame(feature.Vector{1, 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	out, err := cl.QueryFrame(feature.Vector{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.Queried != 0 || out.Cost != 0 || out.Found {
		t.Fatalf("expected degraded zero-cost outcome, got %+v", out)
	}
	snap := cl.Health()
	if !snap.Degraded {
		t.Fatal("snapshot not degraded with every circuit open")
	}
	if snap.DegradedQueries != 1 {
		t.Fatalf("degraded queries = %d, want 1", snap.DegradedQueries)
	}
}

func TestClientBreakerRecoversAfterHeal(t *testing.T) {
	cl, services, net, clock := newResilientCluster(t, 1)
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Crash("peer-a")
	for i := 0; i < 3; i++ {
		if _, err := cl.QueryFrame(feature.Vector{1, 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	net.Restart("peer-a")

	// Still inside the backoff window: the query degrades.
	out, err := cl.QueryFrame(feature.Vector{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("expected degraded inside backoff, got %+v", out)
	}

	// Past the backoff (250 ms ± 20% jitter) a half-open probe is
	// admitted, succeeds, and closes the circuit.
	clock.Advance(301 * time.Millisecond)
	out, err = cl.QueryFrame(feature.Vector{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || out.Hit.Peer != "peer-a" {
		t.Fatalf("probe query: %+v", out)
	}
	snap := cl.Health()
	if snap.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", snap.Recoveries)
	}
	if got := cl.Breaker().State("peer-a"); got != StateClosed {
		t.Fatalf("peer-a state = %v, want closed", got)
	}
}

func TestClientProbeOpenHealsCircuit(t *testing.T) {
	cl, _, net, _ := newResilientCluster(t, 1)
	net.Crash("peer-a")
	for i := 0; i < 3; i++ {
		cl.QueryFrame(feature.Vector{1, 0}, 0)
	}
	if got := cl.Breaker().State("peer-a"); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	net.Restart("peer-a")
	// ProbeOpen pings open circuits without waiting out the backoff —
	// that is the background re-probe's whole job.
	if n := cl.ProbeOpen("self"); n != 1 {
		t.Fatalf("ProbeOpen recovered %d peers, want 1", n)
	}
	if got := cl.Breaker().State("peer-a"); got != StateClosed {
		t.Fatalf("state after probe = %v, want closed", got)
	}
}

func TestClientQueryBudgetDiscardsLateAnswer(t *testing.T) {
	cl, services, _, _ := newResilientCluster(t, 1)
	if _, err := services[0].Store().Insert(feature.Vector{1, 0}, "cat", 0.9, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	obs := &countObserver{}
	cl.SetObserver(obs)

	// One RTT on this cluster is ≥ 10 ms; a 1 ms budget discards the
	// answer and charges the peer a timeout.
	out, err := cl.QueryFrame(feature.Vector{1, 0}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found {
		t.Fatal("late answer was not discarded")
	}
	if out.Cost != time.Millisecond {
		t.Fatalf("cost = %v, want capped at budget", out.Cost)
	}
	ph, ok := cl.health.Peer("peer-a")
	if !ok || ph.Timeouts != 1 {
		t.Fatalf("peer health = %+v ok=%v, want 1 timeout", ph, ok)
	}
	if obs.timeouts != 1 {
		t.Fatalf("observer timeouts = %d, want 1", obs.timeouts)
	}

	// A generous budget admits the same answer.
	out, err = cl.QueryFrame(feature.Vector{1, 0}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || out.Hit.Label != "cat" {
		t.Fatalf("in-budget query: %+v", out)
	}
}

func TestClientObserverEvents(t *testing.T) {
	cl, _, net, clock := newResilientCluster(t, 1)
	obs := &countObserver{}
	cl.SetObserver(obs)
	net.Crash("peer-a")
	for i := 0; i < 3; i++ {
		cl.QueryFrame(feature.Vector{1, 0}, 0)
	}
	net.Restart("peer-a")
	clock.Advance(301 * time.Millisecond)
	cl.QueryFrame(feature.Vector{1, 0}, 0)
	if obs.trips != 1 || obs.recoveries != 1 {
		t.Fatalf("observer trips/recoveries = %d/%d, want 1/1", obs.trips, obs.recoveries)
	}
}

func TestClientHealthIncludesUnobservedPeers(t *testing.T) {
	cl, _, _, _ := newResilientCluster(t, 2)
	snap := cl.Health()
	if len(snap.Peers) != 2 {
		t.Fatalf("snapshot peers = %d, want 2", len(snap.Peers))
	}
	for _, p := range snap.Peers {
		if p.State != StateClosed || p.Successes != 0 || p.Failures != 0 {
			t.Fatalf("fresh peer health = %+v", p)
		}
	}
	if snap.Degraded {
		t.Fatal("fresh client reads degraded")
	}
}

// scriptTransport replays a scripted error per Send and rejects Call.
type scriptTransport struct {
	errs  []error
	sends int
}

func (s *scriptTransport) Call(string, []byte) ([]byte, time.Duration, error) {
	return nil, 0, errors.New("script: no call support")
}

func (s *scriptTransport) Send(string, []byte) (time.Duration, error) {
	var err error
	if s.sends < len(s.errs) {
		err = s.errs[s.sends]
	}
	s.sends++
	return time.Millisecond, err
}

func TestClientGossipRetriesOnLoss(t *testing.T) {
	tr := &scriptTransport{errs: []error{simnet.ErrLost, nil}}
	cfg := DefaultClientConfig()
	cl, err := NewClient(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{"p"})
	cost, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tr.sends != 2 {
		t.Fatalf("sends = %d, want a retry after loss", tr.sends)
	}
	if cost != time.Millisecond {
		t.Fatalf("cost = %v, want the successful send's", cost)
	}
}

func TestClientGossipDoesNotRetryHardFailures(t *testing.T) {
	tr := &scriptTransport{errs: []error{simnet.ErrCrashed, nil}}
	cl, err := NewClient(DefaultClientConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{"p"})
	if _, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if tr.sends != 1 {
		t.Fatalf("sends = %d, want no retry on crash", tr.sends)
	}
}

func TestClientGossipRetryBound(t *testing.T) {
	tr := &scriptTransport{errs: []error{simnet.ErrLost, simnet.ErrLost, simnet.ErrLost}}
	cfg := DefaultClientConfig()
	cfg.GossipAttempts = 3
	cl, err := NewClient(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetPeers([]string{"p"})
	cost, err := cl.Gossip(feature.Vector{1, 0}, "cat", 0.9, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tr.sends != 3 {
		t.Fatalf("sends = %d, want exactly GossipAttempts", tr.sends)
	}
	if cost != 0 {
		t.Fatalf("cost = %v, want 0 for all-lost gossip", cost)
	}
}

func TestResilienceConfigValidate(t *testing.T) {
	base := DefaultClientConfig()
	bad := []func(*ClientConfig){
		func(c *ClientConfig) { c.GossipAttempts = -1 },
		func(c *ClientConfig) { c.QueryBudget = -time.Second },
		func(c *ClientConfig) { c.Health.Alpha = 2 },
		func(c *ClientConfig) { c.Breaker.JitterFrac = 2 },
		func(c *ClientConfig) { c.Breaker.FailureThreshold = -1 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
