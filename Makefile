GO ?= go

# Alloc budgets for the hot-path benchmarks, enforced by cmd/benchgate.
# NearestInto/ExtractInto with a reused buffer must stay allocation-free;
# Candidates returns one slice. Substring-matched against benchmark names.
HOTPATH_BUDGETS = HotPathNearest=0,HotPathExactNearest=0,HotPathSignature=0,HotPathTopK=0,HotPathCandidates=1,HotPathFusedExtract=0,HotPathGridIntegral=0,HotPathHistogram=0

.PHONY: check build test race vet fmt bench bench-hotpath bench-gate fault-matrix

check: vet fmt test race bench-gate fault-matrix

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Full hot-path benchmark run; records results in BENCH_hotpath.json and
# enforces the allocation budgets.
bench-hotpath:
	$(GO) test -run '^$$' -bench 'HotPath|GridNaive' -benchmem \
		./internal/lsh/ ./internal/feature/ | \
		$(GO) run ./cmd/benchgate -json BENCH_hotpath.json -budgets '$(HOTPATH_BUDGETS)'

# Fast allocation gate for `make check`: short benchtime is enough to
# measure allocs/op exactly (it is iteration-count independent).
bench-gate:
	$(GO) test -run '^$$' -bench HotPath -benchmem -benchtime 100x \
		./internal/lsh/ ./internal/feature/ | \
		$(GO) run ./cmd/benchgate -budgets '$(HOTPATH_BUDGETS)'

# Device fault matrix (E19): every sensor fault class plus a DNN outage,
# guards and watchdog toggled. The acceptance test asserts the shape;
# this target prints the full table for inspection.
fault-matrix:
	$(GO) test -run 'TestFaultMatrixAcceptance|TestE19Report' -count=1 ./internal/eval/
	$(GO) run ./cmd/approxbench -exp E19 -frames 300
