package approxcache_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"approxcache"
)

func TestSaveSnapshotFileRoundTrip(t *testing.T) {
	w := testWorkload(t, 40)
	warm := newCache(t, w, approxcache.Options{DisableGossip: true})
	replay(t, warm, w)
	if warm.Len() == 0 {
		t.Fatal("warm cache is empty")
	}
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := warm.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	cold := newCache(t, w, approxcache.Options{})
	n, err := cold.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != warm.Len() {
		t.Fatalf("loaded %d entries, saved %d", n, warm.Len())
	}
	// No temp files left behind.
	dents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dents {
		if strings.Contains(d.Name(), ".tmp-") {
			t.Fatalf("stray temp file %q after save", d.Name())
		}
	}
}

func TestLoadSnapshotFileMissingIsColdStart(t *testing.T) {
	w := testWorkload(t, 10)
	c := newCache(t, w, approxcache.Options{})
	n, err := c.LoadSnapshotFile(filepath.Join(t.TempDir(), "never-written.snap"))
	if err != nil || n != 0 {
		t.Fatalf("missing file = %d, %v; want cold start (0, nil)", n, err)
	}
}

// A crash mid-save must leave the previous complete snapshot loadable:
// the save path writes a temp file and renames, so the real file is
// replaced atomically or not at all.
func TestKillDuringSaveLeavesPreviousSnapshotLoadable(t *testing.T) {
	w := testWorkload(t, 40)
	warm := newCache(t, w, approxcache.Options{DisableGossip: true})
	replay(t, warm, w)
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	if err := warm.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate dying mid-write: a half-written temp beside the target,
	// exactly what an interrupted SaveSnapshotFile leaves behind.
	stray := filepath.Join(dir, "cache.snap.tmp-1234")
	if err := os.WriteFile(stray, good[:len(good)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	cold := newCache(t, w, approxcache.Options{})
	n, err := cold.LoadSnapshotFile(path)
	if err != nil || n == 0 {
		t.Fatalf("previous snapshot unloadable after interrupted save: %d, %v", n, err)
	}

	// The torn temp itself must be rejected as corrupt, not trusted.
	torn := newCache(t, w, approxcache.Options{})
	if _, err := torn.LoadSnapshotFile(stray); !errors.Is(err, approxcache.ErrCorruptSnapshot) {
		t.Fatalf("torn temp load = %v, want ErrCorruptSnapshot", err)
	}
	if torn.Len() != 0 {
		t.Fatal("torn temp polluted the cache")
	}
}

// Snapshots taken while frames are being processed must each be a
// consistent, loadable cut of the cache (run with -race to check the
// locking too).
func TestSaveSnapshotDuringProcessing(t *testing.T) {
	w := testWorkload(t, 120)
	c := newCache(t, w, approxcache.Options{DisableGossip: true})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := time.Duration(0)
		for _, fr := range w.Frames {
			win := w.IMUWindow(prev, fr.Offset)
			prev = fr.Offset
			if _, err := c.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var snaps []bytes.Buffer
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := c.SaveSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, buf)
	}
	wg.Wait()
	for i := range snaps {
		fresh := newCache(t, w, approxcache.Options{})
		if _, err := fresh.LoadSnapshot(&snaps[i]); err != nil {
			t.Fatalf("snapshot %d not loadable: %v", i, err)
		}
	}
}
