package cachestore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
)

// snapshotFormatVersion guards against incompatible snapshot files.
// Version 2 adds a checksummed header so a torn write (power loss
// mid-save, truncated copy) is detected before any entry is trusted;
// version 1 files (bare JSON) are still readable.
const (
	snapshotFormatVersion       = 2
	snapshotLegacyVersion       = 1
	snapshotMagic               = "approxcache-snapshot"
	snapshotHeaderFmt           = snapshotMagic + " v%d crc32=%08x\n"
	snapshotMaxHeaderLen        = 128
	snapshotMaxPayloadMegabytes = 256
)

// ErrCorruptSnapshot is returned by Import when the snapshot cannot be
// decoded or fails validation — a truncated write, a partial download,
// bit rot. The store is left exactly as it was: a damaged warm-start
// file must never poison a running cache, it just means a cold start.
var ErrCorruptSnapshot = errors.New("cachestore: corrupt snapshot")

// wireEntry is the serialized form of one cache entry. Timestamps and
// hit counts are deliberately not persisted: an imported entry starts a
// fresh life under the importer's clock and policy.
type wireEntry struct {
	Vec        []float64 `json:"vec"`
	Label      string    `json:"label"`
	Confidence float64   `json:"confidence"`
	Source     string    `json:"source"`
	// SavedCostMicros carries the avoided cost in microseconds
	// (encoding/json has no native duration support).
	SavedCostMicros int64 `json:"savedCostMicros"`
	// Shadow-audit quality state. All fields are additive: a v2
	// snapshot without them decodes to zeros (a fresh, unaudited
	// entry), and older readers ignore them, so the format version
	// stays 2.
	Confirms    int  `json:"confirms,omitempty"`
	Refutes     int  `json:"refutes,omitempty"`
	ParoleFails int  `json:"paroleFails,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`
}

// wireSnapshot is the snapshot file layout.
type wireSnapshot struct {
	Version int         `json:"version"`
	Entries []wireEntry `json:"entries"`
}

// writeSnapshot serializes entries to w: a header line carrying the
// format version and the payload's CRC-32, then the JSON payload. The
// caller provides a consistent, sorted entry set, so equal stores
// produce byte-identical snapshots. Shared by every store shape.
func writeSnapshot(w io.Writer, entries []Entry) error {
	out := wireSnapshot{
		Version: snapshotFormatVersion,
		Entries: make([]wireEntry, 0, len(entries)),
	}
	for _, e := range entries {
		out.Entries = append(out.Entries, wireEntry{
			Vec:             e.Vec,
			Label:           e.Label,
			Confidence:      e.Confidence,
			Source:          e.Source,
			SavedCostMicros: e.SavedCost.Microseconds(),
			Confirms:        e.Confirms,
			Refutes:         e.Refutes,
			ParoleFails:     e.ParoleFails,
			Quarantined:     e.Quarantined,
		})
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("cachestore: export: %w", err)
	}
	if _, err := fmt.Fprintf(w, snapshotHeaderFmt,
		snapshotFormatVersion, crc32.ChecksumIEEE(payload)); err != nil {
		return fmt.Errorf("cachestore: export: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cachestore: export: %w", err)
	}
	return nil
}

// readSnapshot decodes and fully validates a snapshot from r without
// touching any store: the caller only sees entries that passed the
// checksum (v2), strict JSON decoding, and per-entry validation, so
// import is all-or-nothing. Headerless files are tried as legacy v1
// bare JSON. Shared by every store shape.
func readSnapshot(r io.Reader) (wireSnapshot, error) {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(snapshotMagic))
	if err != nil && !errors.Is(err, io.EOF) {
		return wireSnapshot{}, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	var in wireSnapshot
	if string(peek) == snapshotMagic {
		in, err = decodeV2(br)
	} else {
		in, err = decodeLegacy(br)
	}
	if err != nil {
		return wireSnapshot{}, err
	}
	for i, e := range in.Entries {
		if len(e.Vec) == 0 || e.Label == "" {
			return wireSnapshot{}, fmt.Errorf("%w: entry %d invalid", ErrCorruptSnapshot, i)
		}
		for _, v := range e.Vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return wireSnapshot{}, fmt.Errorf("%w: entry %d has non-finite vector", ErrCorruptSnapshot, i)
			}
		}
	}
	return in, nil
}

// Export writes all live entries to w in the checksummed snapshot
// format. The entry set is captured in one consistent read-locked pass
// (concurrent inserts land either wholly before or wholly after it).
func (s *Store) Export(w io.Writer) error {
	entries := s.Snapshot()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return writeSnapshot(w, entries)
}

// Import reads a snapshot from r and inserts its entries, subject to
// the store's normal capacity and eviction rules. It returns how many
// entries were inserted. Imported entries keep their labels and costs
// but start with fresh recency/frequency state.
//
// The snapshot is checksum-verified (v2), fully decoded, and validated
// before anything is inserted: a truncated, bit-flipped, or otherwise
// corrupt file returns ErrCorruptSnapshot (wrapped, with detail) and
// leaves the store untouched.
func (s *Store) Import(r io.Reader) (int, error) {
	in, err := readSnapshot(r)
	if err != nil {
		return 0, err
	}
	inserted := 0
	for i, e := range in.Entries {
		id, err := s.Insert(feature.Vector(e.Vec), e.Label, e.Confidence, e.Source,
			time.Duration(e.SavedCostMicros)*time.Microsecond)
		if err != nil {
			return inserted, fmt.Errorf("cachestore: import entry %d: %w", i, err)
		}
		s.applyWireQuality(id, e)
		inserted++
	}
	return inserted, nil
}

// applyWireQuality restores an imported entry's shadow-audit state,
// re-quarantining it (pulling it back out of the candidate index) if
// the snapshot recorded it as quarantined. A warm start must not
// silently rehabilitate entries the previous run had condemned.
func (s *Store) applyWireQuality(id lsh.ID, e wireEntry) {
	if e.Confirms == 0 && e.Refutes == 0 && e.ParoleFails == 0 && !e.Quarantined {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	live, ok := s.entries[id]
	if !ok {
		return // evicted by a later entry of the same import
	}
	live.Confirms = e.Confirms
	live.Refutes = e.Refutes
	live.ParoleFails = e.ParoleFails
	if e.Quarantined && !live.Quarantined {
		live.Quarantined = true
		s.qTotal++
		s.index.Remove(id)
	}
}

// decodeV2 parses a headered snapshot: the header line names the
// version and the payload checksum, and the payload must match it.
func decodeV2(br *bufio.Reader) (wireSnapshot, error) {
	var in wireSnapshot
	header, err := readHeaderLine(br)
	if err != nil {
		return in, err
	}
	var version int
	var sum uint32
	if n, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"),
		snapshotMagic+" v%d crc32=%x", &version, &sum); err != nil || n != 2 {
		return in, fmt.Errorf("%w: malformed header %q", ErrCorruptSnapshot, header)
	}
	if version != snapshotFormatVersion {
		return in, fmt.Errorf("%w: version %d, want %d",
			ErrCorruptSnapshot, version, snapshotFormatVersion)
	}
	payload, err := io.ReadAll(io.LimitReader(br, snapshotMaxPayloadMegabytes<<20))
	if err != nil {
		return in, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return in, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorruptSnapshot, got, sum)
	}
	if err := decodeStrict(payload, &in); err != nil {
		return in, err
	}
	if in.Version != snapshotFormatVersion {
		return in, fmt.Errorf("%w: payload version %d, want %d",
			ErrCorruptSnapshot, in.Version, snapshotFormatVersion)
	}
	return in, nil
}

// decodeLegacy parses a headerless v1 snapshot: bare JSON with no
// checksum to verify.
func decodeLegacy(br *bufio.Reader) (wireSnapshot, error) {
	var in wireSnapshot
	payload, err := io.ReadAll(io.LimitReader(br, snapshotMaxPayloadMegabytes<<20))
	if err != nil {
		return in, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if err := decodeStrict(payload, &in); err != nil {
		return in, err
	}
	if in.Version != snapshotLegacyVersion {
		return in, fmt.Errorf("%w: version %d, want %d",
			ErrCorruptSnapshot, in.Version, snapshotLegacyVersion)
	}
	return in, nil
}

// decodeStrict unmarshals payload, rejecting trailing garbage a plain
// json.Decoder would silently ignore.
func decodeStrict(payload []byte, in *wireSnapshot) error {
	dec := json.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(in); err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: trailing data after payload", ErrCorruptSnapshot)
	}
	return nil
}

// readHeaderLine reads the newline-terminated header, bounding how far
// it will scan so a garbage file cannot buffer unboundedly.
func readHeaderLine(br *bufio.Reader) (string, error) {
	var b bytes.Buffer
	for b.Len() <= snapshotMaxHeaderLen {
		c, err := br.ReadByte()
		if err != nil {
			return "", fmt.Errorf("%w: truncated header", ErrCorruptSnapshot)
		}
		b.WriteByte(c)
		if c == '\n' {
			return b.String(), nil
		}
	}
	return "", fmt.Errorf("%w: header too long", ErrCorruptSnapshot)
}
