// Command cachenode runs a live approximate-cache node that serves the
// peer protocol over TCP. Nodes sharing a -class-seed recognize the
// same object vocabulary, so one node's cached results answer another
// node's queries.
//
// Typical two-terminal session:
//
//	# terminal 1: a warm node
//	cachenode -addr 127.0.0.1:7070 -warm 600
//
//	# terminal 2: a cold node that reuses terminal 1's work
//	cachenode -addr 127.0.0.1:7071 -peers 127.0.0.1:7070 -frames 300
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"approxcache"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachenode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cachenode", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "TCP listen address")
		name      = fs.String("name", "cachenode", "node name advertised in pings")
		peersFlag = fs.String("peers", "", "comma-separated peer addresses")
		frames    = fs.Int("frames", 300, "frames to process after warmup")
		warm      = fs.Int("warm", 0, "frames to process before serving stats (cache warmup)")
		seed      = fs.Int64("seed", 1, "workload seed (vary per node)")
		classSeed = fs.Int64("class-seed", 424242, "shared class vocabulary seed")
		model     = fs.String("model", "mobilenet-v2", "dnn profile (mobilenet-v2|squeezenet|inception-v3|resnet-50)")
		serve     = fs.Bool("serve", false, "keep serving after processing until interrupted")
		budget    = fs.Duration("peer-budget", 0, "per-frame peer time budget (0 = quarter of mean inference latency, negative = unbounded)")
		snapshot  = fs.String("snapshot", "", "snapshot file: warm-start from it on boot, save back to it on exit (crash-safe atomic write)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, err := profileByName(*model)
	if err != nil {
		return err
	}
	spec := approxcache.StationaryHeavyWorkload(*warm+*frames, *seed)
	spec.ClassSeed = *classSeed
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	classifier, err := approxcache.NewSimulatedClassifier(profile, w, *seed)
	if err != nil {
		return fmt.Errorf("classifier: %w", err)
	}
	cache, err := approxcache.New(classifier, approxcache.Options{
		Clock:      approxcache.NewVirtualClock(),
		PeerBudget: *budget,
	})
	if err != nil {
		return err
	}

	if *snapshot != "" {
		// Recovery on start: a missing file is a cold start, a corrupt
		// one (torn write from a crash mid-save) is reported but not
		// fatal — the node just starts cold.
		n, lerr := cache.LoadSnapshotFile(*snapshot)
		switch {
		case lerr != nil:
			fmt.Fprintf(os.Stderr, "cachenode: snapshot %s unusable (%v), starting cold\n", *snapshot, lerr)
		case n > 0:
			fmt.Printf("warm-started %d entries from %s\n", n, *snapshot)
		}
	}

	srv, err := cache.ServeTCP(*name, *addr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cachenode: close:", cerr)
		}
	}()
	fmt.Printf("%s listening on %s (model %s, %d classes)\n",
		*name, srv.Addr(), profile.Name, spec.NumClasses)

	var client *approxcache.PeerClient
	if *peersFlag != "" {
		addrs := splitComma(*peersFlag)
		client, err = cache.DialPeers(addrs...)
		if err != nil {
			return err
		}
		// Rank peers by liveness and cache warmth before starting.
		roster, err := approxcache.NewPeerRoster(*name, client, approxcache.NewVirtualClock())
		if err != nil {
			return err
		}
		roster.Add(addrs...)
		best := roster.ApplyBest(0)
		fmt.Printf("peering with %v (%d alive)\n", addrs, len(best))
		for _, peer := range best {
			if info, ok := roster.Info(peer); ok {
				fmt.Printf("  %s: %d cached entries, rtt %v\n",
					peer, info.Entries, info.RTT.Round(10*time.Microsecond))
			}
		}
	}

	replay := func(frames []approxcache.Frame, label string) error {
		prev := time.Duration(0)
		start := time.Now()
		for _, fr := range frames {
			win := w.IMUWindow(prev, fr.Offset)
			prev = fr.Offset
			if _, err := cache.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
				return fmt.Errorf("frame %d: %w", fr.Index, err)
			}
		}
		fmt.Printf("%s: processed %d frames in %v wall time\n",
			label, len(frames), time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *warm > 0 {
		if err := replay(w.Frames[:*warm], "warmup"); err != nil {
			return err
		}
	}
	if *frames > 0 {
		if err := replay(w.Frames[*warm:], "run"); err != nil {
			return err
		}
	}

	printStats(cache, client)
	if *serve {
		fmt.Println("serving peers; ctrl-c to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	if *snapshot != "" {
		if serr := cache.SaveSnapshotFile(*snapshot); serr != nil {
			return fmt.Errorf("save snapshot: %w", serr)
		}
		fmt.Printf("saved %d entries to %s\n", cache.Len(), *snapshot)
	}
	return nil
}

func printStats(cache *approxcache.Cache, client *approxcache.PeerClient) {
	stats := cache.Stats()
	fmt.Printf("frames: %d  hit-rate: %.1f%%  accuracy: %.1f%%  cache entries: %d\n",
		stats.Frames(), stats.HitRate()*100, stats.Accuracy()*100, cache.Len())
	sum := stats.Latency().Summary()
	fmt.Printf("latency: mean=%v p50=%v p99=%v\n", sum.Mean, sum.P50, sum.P99)
	counts := stats.CountBySource()
	fmt.Printf("sources: imu=%d video=%d local=%d peer=%d dnn=%d fallback=%d\n",
		counts[approxcache.SourceIMU], counts[approxcache.SourceVideo],
		counts[approxcache.SourceLocal], counts[approxcache.SourcePeer],
		counts[approxcache.SourceDNN], counts[approxcache.SourceFallback])
	if sf := stats.SensorFaultTotal(); sf > 0 {
		fmt.Printf("sensor faults: %d flagged", sf)
		for _, kind := range sortedFaultKinds(stats.SensorFaults()) {
			fmt.Printf(" %s=%d", kind, stats.SensorFaults()[kind])
		}
		fmt.Println()
	}
	timeouts, retries, wtrips, wrecoveries, fastFails := stats.WatchdogEvents()
	if timeouts+retries+wtrips+wrecoveries+fastFails > 0 || stats.DegradedServeTotal() > 0 {
		fmt.Printf("watchdog: %d timeouts, %d retries, %d trips, %d recoveries, %d fast-fails, %d degraded serves\n",
			timeouts, retries, wtrips, wrecoveries, fastFails, stats.DegradedServeTotal())
	}
	q, h := stats.PeerQueries()
	if q > 0 {
		fmt.Printf("peer queries: %d (%d hits)\n", q, h)
	}
	if trips, recoveries := stats.BreakerEvents(); trips > 0 || stats.PeerTimeouts() > 0 || stats.DegradedFrames() > 0 {
		fmt.Printf("resilience: %d timeouts, %d breaker trips, %d recoveries, %d degraded frames\n",
			stats.PeerTimeouts(), trips, recoveries, stats.DegradedFrames())
	}
	if client != nil {
		for _, p := range client.Health().Peers {
			fmt.Printf("  peer %s: %s, %d ok / %d failed, rtt ewma %v\n",
				p.Peer, p.State, p.Successes, p.Failures, p.LatencyEWMA.Round(10*time.Microsecond))
		}
	}
	ss := cache.StoreStats()
	fmt.Printf("store: %d entries (dnn=%d peer=%d), %d evictions, feature-cache reuse saved %v of inference\n",
		ss.Entries, ss.BySource["dnn"], ss.BySource["peer"], ss.Evictions,
		ss.SavedTotal.Round(time.Millisecond))
}

func profileByName(name string) (approxcache.ModelProfile, error) {
	for _, p := range []approxcache.ModelProfile{
		approxcache.MobileNetV2,
		approxcache.SqueezeNet,
		approxcache.InceptionV3,
		approxcache.ResNet50,
	} {
		if p.Name == name {
			return p, nil
		}
	}
	return approxcache.ModelProfile{}, fmt.Errorf("unknown model %q", name)
}

func sortedFaultKinds(m map[string]int) []string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
