package approxcache_test

import (
	"bytes"
	"testing"
	"time"

	"approxcache"
)

func testWorkload(t *testing.T, frames int) *approxcache.Workload {
	t.Helper()
	spec := approxcache.StationaryHeavyWorkload(frames, 3)
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newCache(t *testing.T, w *approxcache.Workload, opts approxcache.Options) *approxcache.Cache {
	t.Helper()
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Clock == nil {
		opts.Clock = approxcache.NewVirtualClock()
	}
	c, err := approxcache.New(clf, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func replay(t *testing.T, c *approxcache.Cache, w *approxcache.Workload) {
	t.Helper()
	prev := time.Duration(0)
	for _, fr := range w.Frames {
		win := w.IMUWindow(prev, fr.Offset)
		prev = fr.Offset
		if _, err := c.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := approxcache.New(nil, approxcache.Options{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
	w := testWorkload(t, 10)
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := approxcache.New(clf, approxcache.Options{LSHBits: -3}); err == nil {
		t.Fatal("bad LSH options accepted")
	}
	if _, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, nil, 1); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	w := testWorkload(t, 10)
	c := newCache(t, w, approxcache.Options{})
	if c.Mode() != approxcache.ModeApprox {
		t.Fatalf("default mode = %v", c.Mode())
	}
	if c.Len() != 0 || c.Evictions() != 0 {
		t.Fatal("fresh cache not empty")
	}
	if _, ok := c.LastResult(); ok {
		t.Fatal("fresh cache has a last result")
	}
}

func TestBaselineModeAccessors(t *testing.T) {
	w := testWorkload(t, 10)
	c := newCache(t, w, approxcache.Options{Mode: approxcache.ModeNoCache})
	replay(t, c, w)
	if c.Len() != 0 || c.Evictions() != 0 {
		t.Fatal("baseline mode should report empty store")
	}
	if c.Stats().HitRate() != 0 {
		t.Fatal("no-cache produced hits")
	}
}

func TestEndToEndApproxBeatsNoCache(t *testing.T) {
	w := testWorkload(t, 200)
	base := newCache(t, w, approxcache.Options{Mode: approxcache.ModeNoCache})
	replay(t, base, w)
	apx := newCache(t, w, approxcache.Options{})
	replay(t, apx, w)

	bm := base.Stats().Latency().Mean()
	am := apx.Stats().Latency().Mean()
	if am*2 >= bm {
		t.Fatalf("approx mean %v not ≪ no-cache mean %v", am, bm)
	}
	if apx.Stats().HitRate() < 0.5 {
		t.Fatalf("hit rate = %v", apx.Stats().HitRate())
	}
	if apx.Len() == 0 {
		t.Fatal("cache stayed empty")
	}
	if base.Stats().Accuracy()-apx.Stats().Accuracy() > 0.1 {
		t.Fatalf("accuracy loss too large: %v vs %v",
			base.Stats().Accuracy(), apx.Stats().Accuracy())
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	w := testWorkload(t, 20)
	clock := approxcache.NewVirtualClock()
	c := newCache(t, w, approxcache.Options{Clock: clock})
	start := clock.Now()
	replay(t, c, w)
	if !clock.Now().After(start) {
		t.Fatal("virtual clock did not advance")
	}
}

func TestCapacityAndEvictions(t *testing.T) {
	// A panning sweep changes scenes every few frames, producing
	// enough distinct insertions to pressure a 4-entry cache.
	spec := approxcache.StandardWorkloads(300, 3)[3]
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, w, approxcache.Options{Capacity: 4, Eviction: approxcache.EvictLRU})
	replay(t, c, w)
	if c.Len() > 4 {
		t.Fatalf("cache len %d exceeds capacity", c.Len())
	}
	if c.Evictions() == 0 {
		t.Fatal("tiny cache never evicted")
	}
}

func TestSimNetworkPeering(t *testing.T) {
	w := testWorkload(t, 60)
	net, err := approxcache.NewSimNetwork(7)
	if err != nil {
		t.Fatal(err)
	}
	clock := approxcache.NewVirtualClock()
	// Gossip is disabled on A so B's reuse must flow through live
	// peer queries rather than pre-warmed local entries.
	a := newCache(t, w, approxcache.Options{Clock: clock, DisableGossip: true})
	b := newCache(t, w, approxcache.Options{Clock: clock, DisableGossip: true})
	ca, err := a.JoinSimNetwork(net, "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.JoinSimNetwork(net, "dev-b")
	if err != nil {
		t.Fatal(err)
	}
	approxcache.ConnectAll(map[string]*approxcache.PeerClient{"dev-a": ca, "dev-b": cb})
	if got := ca.Peers(); len(got) != 1 || got[0] != "dev-b" {
		t.Fatalf("dev-a peers = %v", got)
	}
	// Device A works through the trace; device B then sees the same
	// scenes and should get peer hits without ever running its DNN on
	// some frames.
	replay(t, a, w)
	replay(t, b, w)
	counts := b.Stats().CountBySource()
	if counts[approxcache.SourcePeer] == 0 {
		t.Fatalf("no peer hits on device B: %v", counts)
	}
}

func TestLateJoinerBecomesReachable(t *testing.T) {
	w := testWorkload(t, 30)
	net, err := approxcache.NewSimNetwork(7)
	if err != nil {
		t.Fatal(err)
	}
	clock := approxcache.NewVirtualClock()
	opts := approxcache.Options{Clock: clock, DisableGossip: true}
	a := newCache(t, w, opts)
	b := newCache(t, w, opts)
	ca, err := a.JoinSimNetwork(net, "dev-a")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.JoinSimNetwork(net, "dev-b")
	if err != nil {
		t.Fatal(err)
	}
	clients := map[string]*approxcache.PeerClient{"dev-a": ca, "dev-b": cb}
	if err := approxcache.ConnectAll(clients); err != nil {
		t.Fatal(err)
	}
	epoch := net.Epoch()

	// A third device joins after the mesh formed. Membership must be
	// observable via the epoch so callers know to re-wire.
	c := newCache(t, w, opts)
	cc, err := c.JoinSimNetwork(net, "dev-c")
	if err != nil {
		t.Fatal(err)
	}
	if net.Epoch() == epoch {
		t.Fatal("late join did not bump the mesh epoch")
	}
	for name, cl := range clients {
		for _, p := range cl.Peers() {
			if p == "dev-c" {
				t.Fatalf("%s saw dev-c before ConnectAll re-ran", name)
			}
		}
	}
	// Re-running ConnectAll is idempotent and wires the late joiner in.
	clients["dev-c"] = cc
	if err := approxcache.ConnectAll(clients); err != nil {
		t.Fatal(err)
	}
	for name, cl := range clients {
		if got := len(cl.Peers()); got != 2 {
			t.Fatalf("%s has %d peers after re-wire", name, got)
		}
	}
	// The late joiner is actually reachable, not just listed.
	pong, _, err := ca.Ping("dev-a", "dev-c")
	if err != nil {
		t.Fatal(err)
	}
	if pong.From != "dev-c" {
		t.Fatalf("pong from %q", pong.From)
	}
}

func TestJoinSimNetworkRequiresApprox(t *testing.T) {
	w := testWorkload(t, 10)
	c := newCache(t, w, approxcache.Options{Mode: approxcache.ModeNoCache})
	net, err := approxcache.NewSimNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.JoinSimNetwork(net, "x"); err == nil {
		t.Fatal("baseline cache joined network")
	}
	if _, err := c.DialPeers("127.0.0.1:9"); err == nil {
		t.Fatal("baseline cache dialed peers")
	}
	if _, err := c.ServeTCP("x", "127.0.0.1:0"); err == nil {
		t.Fatal("baseline cache served TCP")
	}
}

func TestTCPPeering(t *testing.T) {
	w := testWorkload(t, 40)
	clock := approxcache.NewVirtualClock()
	server := newCache(t, w, approxcache.Options{Clock: clock})
	srv, err := server.ServeTCP("server-node", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// Warm the server cache by replaying the trace there.
	replay(t, server, w)

	client := newCache(t, w, approxcache.Options{Clock: clock, DisableGossip: true})
	if _, err := client.DialPeers(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	replay(t, client, w)
	counts := client.Stats().CountBySource()
	if counts[approxcache.SourcePeer] == 0 {
		t.Fatalf("no TCP peer hits: %v", counts)
	}
}

func TestSnapshotWarmStart(t *testing.T) {
	w := testWorkload(t, 150)
	warm := newCache(t, w, approxcache.Options{DisableGossip: true})
	replay(t, warm, w)
	if warm.Len() == 0 {
		t.Fatal("warm cache empty")
	}
	var buf bytes.Buffer
	if err := warm.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cold := newCache(t, w, approxcache.Options{})
	n, err := cold.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != warm.Len() {
		t.Fatalf("loaded %d, want %d", n, warm.Len())
	}
	// A warm-started cache resolves its very first frames from the
	// local cache instead of running the DNN cold.
	replay(t, cold, w)
	coldCounts := cold.Stats().CountBySource()
	freshCounts := func() map[approxcache.Source]int {
		fresh := newCache(t, w, approxcache.Options{})
		replay(t, fresh, w)
		return fresh.Stats().CountBySource()
	}()
	if coldCounts[approxcache.SourceDNN] > freshCounts[approxcache.SourceDNN] {
		t.Fatalf("warm start ran MORE inferences: %d vs %d",
			coldCounts[approxcache.SourceDNN], freshCounts[approxcache.SourceDNN])
	}
	// Baseline modes reject snapshots.
	base := newCache(t, w, approxcache.Options{Mode: approxcache.ModeNoCache})
	if err := base.SaveSnapshot(&buf); err == nil {
		t.Fatal("baseline saved a snapshot")
	}
	if _, err := base.LoadSnapshot(&buf); err == nil {
		t.Fatal("baseline loaded a snapshot")
	}
}

func TestAblationTogglesChangeSourceMix(t *testing.T) {
	w := testWorkload(t, 150)
	full := newCache(t, w, approxcache.Options{})
	replay(t, full, w)
	noIMU := newCache(t, w, approxcache.Options{DisableIMUGate: true})
	replay(t, noIMU, w)

	if full.Stats().CountBySource()[approxcache.SourceIMU] == 0 {
		t.Fatal("full pipeline produced no IMU hits on stationary-heavy workload")
	}
	if noIMU.Stats().CountBySource()[approxcache.SourceIMU] != 0 {
		t.Fatal("disabled IMU gate still produced IMU hits")
	}
	// The video gate should pick up most of what the IMU gate served.
	if noIMU.Stats().CountBySource()[approxcache.SourceVideo] <=
		full.Stats().CountBySource()[approxcache.SourceVideo] {
		t.Fatal("video gate did not absorb IMU-gated frames")
	}
}
