// Command benchgate turns `go test -bench` output into a JSON record
// and enforces allocation budgets on the hot-path benchmarks, so a PR
// that quietly reintroduces per-query allocation fails `make check`
// instead of shipping. It has no dependencies beyond the standard
// library: benchmark output is piped in on stdin.
//
// Usage:
//
//	go test -run '^$' -bench HotPath -benchmem ./... | \
//	    benchgate -json BENCH_hotpath.json -budgets 'HotPathNearest=0,HotPathFusedExtract=0'
//
// Budgets name a benchmark (substring match, sub-benchmarks included)
// and pin its maximum allowed allocs/op. A budgeted benchmark missing
// from the input is an error — a silently deleted benchmark must not
// pass the gate.
//
// A second mode gates the serving-throughput report instead of
// benchmark output:
//
//	benchgate -throughput-json BENCH_throughput.json -min-speedup 3.0
//
// It reads the JSON written by `approxbench -throughput` and fails
// unless the sharded+batched architecture beat the single-mutex
// baseline by at least -min-speedup. Stdin is not read in this mode.
//
// A third mode gates the overload-resilience report:
//
//	benchgate -overload-json BENCH_overload.json -min-retention 0.85
//
// It reads the JSON written by `approxbench -overload` and fails
// unless the admission-protected node retained at least -min-retention
// of its peak goodput at the highest offered load.
//
// A fourth mode gates the lookup-pipeline report:
//
//	benchgate -lookup-json BENCH_lookup.json -min-lookup-speedup 1.3
//
// It reads the JSON written by `approxbench -hitheavy` and fails
// unless the multi-probe + sketch + quantized pipeline beat the
// exact-bucket baseline by at least -min-lookup-speedup ns/op AND
// matched or beat its recall AND ran the warm path with zero heap
// allocations.
//
// A fifth mode gates the cache-quality (label-drift) report:
//
//	benchgate -quality-json BENCH_quality.json \
//	    -min-accuracy-recovery 0.95 -min-savings-retention 0.6
//
// It reads the JSON written by `approxbench -drift` and fails unless
// the self-healing node recovered at least -min-accuracy-recovery of
// the no-drift baseline's tail accuracy while retaining at least
// -min-savings-retention of its latency savings.
//
// A sixth mode gates the read-scalability report:
//
//	benchgate -readscale-json BENCH_readscale.json -min-readscale-speedup 2.0
//
// It reads the JSON written by `approxbench -readscale` and fails
// unless the lock-free read path beat the RWMutex baseline at 16
// concurrent readers, with zero warm-path allocations. The required
// speedup is parallelism-aware: -min-readscale-speedup applies on
// machines with >= 8 procs (where lock-word cache-line bouncing is
// the measured bottleneck), 2–7 procs require 1.2x, and a single-P
// run — where both paths serialize on the scheduler, not the lock —
// only requires no regression (0.9x). The report records the
// GOMAXPROCS it measured under, so the gate always matches the
// hardware the numbers came from.
//
// A seventh mode gates the P2P wire-protocol report:
//
//	benchgate -p2p-json BENCH_p2p.json -min-bytes-reduction 4.0
//
// It reads the JSON written by `approxbench -p2p` and fails unless the
// compact protocol (quantized codec v2 + delta digests + coalescing +
// gossip batching) cut wire bytes per frame by at least
// -min-bytes-reduction at the most constrained bandwidth, without
// losing any peer hit rate versus the legacy float64 protocol.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// HasMem records whether -benchmem columns were present, so a zero
	// AllocsPerOp is distinguishable from an unmeasured one.
	HasMem bool `json:"has_mem"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		jsonPath   = fs.String("json", "", "write parsed results to this file as JSON")
		budgets    = fs.String("budgets", "", "comma-separated Name=maxAllocsPerOp gates")
		tputJSON   = fs.String("throughput-json", "", "gate a throughput report file instead of reading benchmarks from stdin")
		minSpeedup = fs.Float64("min-speedup", 3.0, "with -throughput-json, minimum required sharded+batched speedup over single-mutex")
		olJSON     = fs.String("overload-json", "", "gate an overload report file instead of reading benchmarks from stdin")
		minRetain  = fs.Float64("min-retention", 0.85, "with -overload-json, minimum required goodput retention at the highest offered load")
		luJSON     = fs.String("lookup-json", "", "gate a lookup-pipeline report file instead of reading benchmarks from stdin")
		minLookup  = fs.Float64("min-lookup-speedup", 1.3, "with -lookup-json, minimum required tuned-pipeline speedup over exact-bucket")
		qJSON      = fs.String("quality-json", "", "gate a cache-quality (label-drift) report file instead of reading benchmarks from stdin")
		minRecov   = fs.Float64("min-accuracy-recovery", 0.95, "with -quality-json, minimum protected tail accuracy as a fraction of the no-drift baseline")
		minSavings = fs.Float64("min-savings-retention", 0.6, "with -quality-json, minimum protected latency savings as a fraction of the no-drift baseline")
		rsJSON     = fs.String("readscale-json", "", "gate a read-scalability report file instead of reading benchmarks from stdin")
		minRS      = fs.Float64("min-readscale-speedup", 2.0, "with -readscale-json, required lock-free speedup at 16 readers on >= 8 procs (scaled down automatically on smaller machines)")
		p2pJSON    = fs.String("p2p-json", "", "gate a P2P wire-protocol report file instead of reading benchmarks from stdin")
		minBytes   = fs.Float64("min-bytes-reduction", 4.0, "with -p2p-json, minimum required bytes/frame reduction of the compact protocol at the most constrained bandwidth")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *p2pJSON != "" {
		return checkP2P(*p2pJSON, *minBytes, out)
	}
	if *rsJSON != "" {
		return checkReadScale(*rsJSON, *minRS, out)
	}
	if *tputJSON != "" {
		return checkThroughput(*tputJSON, *minSpeedup, out)
	}
	if *olJSON != "" {
		return checkOverload(*olJSON, *minRetain, out)
	}
	if *luJSON != "" {
		return checkLookup(*luJSON, *minLookup, out)
	}
	if *qJSON != "" {
		return checkQuality(*qJSON, *minRecov, *minSavings, out)
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	for _, r := range results {
		fmt.Fprintf(out, "%-48s %12.1f ns/op %8.0f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	return checkBudgets(*budgets, results)
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines look like:
//
//	BenchmarkName-8   500000   2100 ns/op   16 B/op   1 allocs/op
func parseBench(in io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo 	--- FAIL"
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
				r.HasMem = true
			case "allocs/op":
				r.AllocsPerOp = v
				r.HasMem = true
			}
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// checkBudgets enforces Name=maxAllocs gates against results.
func checkBudgets(spec string, results []Result) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	var failures []string
	for _, gate := range strings.Split(spec, ",") {
		gate = strings.TrimSpace(gate)
		if gate == "" {
			continue
		}
		name, limitStr, ok := strings.Cut(gate, "=")
		if !ok {
			return fmt.Errorf("bad budget %q (want Name=maxAllocs)", gate)
		}
		limit, err := strconv.ParseFloat(limitStr, 64)
		if err != nil {
			return fmt.Errorf("bad budget limit %q: %v", gate, err)
		}
		matched := false
		for _, r := range results {
			if !strings.Contains(r.Name, name) {
				continue
			}
			matched = true
			if !r.HasMem {
				failures = append(failures,
					fmt.Sprintf("%s: no allocs/op column (run with -benchmem)", r.Name))
				continue
			}
			if r.AllocsPerOp > limit {
				failures = append(failures,
					fmt.Sprintf("%s: %.0f allocs/op exceeds budget %.0f", r.Name, r.AllocsPerOp, limit))
			}
		}
		if !matched {
			failures = append(failures, fmt.Sprintf("budget %q matched no benchmark", name))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation budget violations:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// throughputReport mirrors the fields of eval.ThroughputReport this
// gate needs (benchgate stays stdlib-only, so it does not import eval).
type throughputReport struct {
	Streams int `json:"streams"`
	Frames  int `json:"frames_per_stream"`
	Results []struct {
		Mode string  `json:"mode"`
		FPS  float64 `json:"fps"`
	} `json:"results"`
	Speedup float64 `json:"speedup"`
}

// checkThroughput enforces the serving-scale regression gate on a
// report written by `approxbench -throughput`.
func checkThroughput(path string, minSpeedup float64, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep throughputReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(out, "%-24s %10.1f fps\n", r.Mode, r.FPS)
	}
	fmt.Fprintf(out, "speedup %.2fx at %d streams (gate: >= %.2fx)\n",
		rep.Speedup, rep.Streams, minSpeedup)
	if rep.Speedup < minSpeedup {
		return fmt.Errorf("throughput speedup %.2fx below required %.2fx", rep.Speedup, minSpeedup)
	}
	return nil
}

// overloadReport mirrors the fields of eval.OverloadReport this gate
// needs (benchgate stays stdlib-only, so it does not import eval).
type overloadReport struct {
	Sessions    int     `json:"sessions"`
	CapacityRPS float64 `json:"capacity_rps"`
	Points      []struct {
		Mode       string  `json:"mode"`
		Load       float64 `json:"load"`
		GoodputRPS float64 `json:"goodput_rps"`
		P99MS      float64 `json:"p99_ms"`
	} `json:"points"`
	PeakGoodput  float64 `json:"peak_goodput_rps"`
	GoodputAtMax float64 `json:"goodput_at_max_rps"`
	Retention    float64 `json:"retention"`
}

// checkOverload enforces the overload-resilience regression gate on a
// report written by `approxbench -overload`.
func checkOverload(path string, minRetention float64, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep overloadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Points) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	for _, p := range rep.Points {
		fmt.Fprintf(out, "%-12s %4gx %10.1f goodput/s %10.1f p99 ms\n",
			p.Mode, p.Load, p.GoodputRPS, p.P99MS)
	}
	fmt.Fprintf(out, "goodput retention %.2f at %d sessions (gate: >= %.2f)\n",
		rep.Retention, rep.Sessions, minRetention)
	if rep.Retention < minRetention {
		return fmt.Errorf("goodput retention %.2f below required %.2f (peak %.1f/s, at max load %.1f/s)",
			rep.Retention, minRetention, rep.PeakGoodput, rep.GoodputAtMax)
	}
	return nil
}

// lookupReport mirrors the fields of eval.LookupReport this gate needs
// (benchgate stays stdlib-only, so it does not import eval).
type lookupReport struct {
	Entries int `json:"entries"`
	Queries int `json:"queries"`
	Results []struct {
		Name        string  `json:"name"`
		Tables      int     `json:"tables"`
		Probes      int     `json:"probes"`
		NsPerOp     float64 `json:"ns_per_op"`
		Recall      float64 `json:"recall"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"results"`
	Speedup     float64 `json:"speedup"`
	RecallBase  float64 `json:"recall_base"`
	RecallTuned float64 `json:"recall_tuned"`
}

// checkLookup enforces the lookup-pipeline regression gate on a report
// written by `approxbench -hitheavy`: the tuned pipeline must be
// faster by at least minSpeedup, at equal-or-better recall, with zero
// warm-path allocations in every configuration.
func checkLookup(path string, minSpeedup float64, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep lookupReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(out, "%-24s tables=%d probes=%d %10.0f ns/op  recall=%.3f  allocs=%.0f\n",
			r.Name, r.Tables, r.Probes, r.NsPerOp, r.Recall, r.AllocsPerOp)
		if r.AllocsPerOp != 0 {
			return fmt.Errorf("%s: %.0f warm-path allocs/op, budget is 0", r.Name, r.AllocsPerOp)
		}
	}
	fmt.Fprintf(out, "lookup speedup %.2fx at recall %.3f vs %.3f over %d entries (gate: >= %.2fx, recall >= base)\n",
		rep.Speedup, rep.RecallTuned, rep.RecallBase, rep.Entries, minSpeedup)
	if rep.Speedup < minSpeedup {
		return fmt.Errorf("lookup speedup %.2fx below required %.2fx", rep.Speedup, minSpeedup)
	}
	if rep.RecallTuned < rep.RecallBase {
		return fmt.Errorf("tuned recall %.3f below exact-bucket recall %.3f", rep.RecallTuned, rep.RecallBase)
	}
	return nil
}

// readScaleReport mirrors the fields of eval.ReadScaleReport this gate
// needs (benchgate stays stdlib-only, so it does not import eval).
type readScaleReport struct {
	Entries  int `json:"entries"`
	MaxProcs int `json:"max_procs"`
	Points   []struct {
		Readers     int     `json:"readers"`
		LockFreeOps float64 `json:"lockfree_ops_per_sec"`
		LockedOps   float64 `json:"locked_ops_per_sec"`
		Speedup     float64 `json:"speedup"`
	} `json:"points"`
	SpeedupAt16 float64 `json:"speedup_at_16"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// readScaleFloor returns the required 16-reader speedup for a machine
// with maxProcs schedulable procs. Lock-freedom removes shared-lock
// cache-line bouncing between parallel readers; with nothing running
// in parallel there is no bouncing to remove, so the floor decays to a
// plain no-regression bound on small machines.
func readScaleFloor(maxProcs int, minSpeedup float64) float64 {
	switch {
	case maxProcs >= 8:
		return minSpeedup
	case maxProcs >= 2:
		return 1.2
	default:
		return 0.9
	}
}

// checkReadScale enforces the read-scalability gate on a report
// written by `approxbench -readscale`.
func checkReadScale(path string, minSpeedup float64, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep readScaleReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Points) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	if rep.MaxProcs < 1 {
		return fmt.Errorf("%s: report does not record max_procs", path)
	}
	for _, p := range rep.Points {
		fmt.Fprintf(out, "%3d readers  lock-free %12.0f ops/s  locked %12.0f ops/s  speedup %.2fx\n",
			p.Readers, p.LockFreeOps, p.LockedOps, p.Speedup)
		if p.LockFreeOps <= 0 || p.LockedOps <= 0 {
			return fmt.Errorf("%d readers: non-positive throughput (lock-free %.0f, locked %.0f)",
				p.Readers, p.LockFreeOps, p.LockedOps)
		}
	}
	floor := readScaleFloor(rep.MaxProcs, minSpeedup)
	fmt.Fprintf(out, "speedup at 16 readers %.2fx under GOMAXPROCS=%d (gate: >= %.2fx), warm allocs/op %.0f\n",
		rep.SpeedupAt16, rep.MaxProcs, floor, rep.AllocsPerOp)
	if rep.AllocsPerOp != 0 {
		return fmt.Errorf("lock-free warm path allocates %.0f/op, budget is 0", rep.AllocsPerOp)
	}
	if rep.SpeedupAt16 < floor {
		return fmt.Errorf("read-scale speedup %.2fx below required %.2fx at GOMAXPROCS=%d",
			rep.SpeedupAt16, floor, rep.MaxProcs)
	}
	return nil
}

// p2pReport mirrors the fields of eval.P2PReport this gate needs
// (benchgate stays stdlib-only, so it does not import eval).
type p2pReport struct {
	Nodes    int `json:"nodes"`
	Sessions int `json:"sessions"`
	Frames   int `json:"frames"`
	Points   []struct {
		BandwidthMBps float64 `json:"bandwidth_mbps"`
		Legacy        p2pMode `json:"legacy"`
		Compact       p2pMode `json:"compact"`
		Reduction     float64 `json:"bytes_reduction"`
	} `json:"points"`
	ConstrainedMBps float64 `json:"constrained_mbps"`
	BytesReduction  float64 `json:"bytes_reduction"`
	HitLegacy       float64 `json:"hit_legacy"`
	HitCompact      float64 `json:"hit_compact"`
}

type p2pMode struct {
	Mode          string  `json:"mode"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	PeerHitRate   float64 `json:"peer_hit_rate"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// checkP2P enforces the wire-protocol regression gate on a report
// written by `approxbench -p2p`: the compact protocol must cut
// bytes/frame by at least minReduction at the most constrained link,
// at equal-or-better peer hit rate.
func checkP2P(path string, minReduction float64, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep p2pReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Points) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	for _, p := range rep.Points {
		for _, m := range []p2pMode{p.Legacy, p.Compact} {
			fmt.Fprintf(out, "%6.2f MB/s %-11s %10.1f B/frame  hit=%.3f  mean=%.2f ms\n",
				p.BandwidthMBps, m.Mode, m.BytesPerFrame, m.PeerHitRate, m.MeanLatencyMS)
		}
		if m := p.Compact; m.BytesPerFrame <= 0 {
			return fmt.Errorf("%.2f MB/s: non-positive compact bytes/frame %.1f",
				p.BandwidthMBps, m.BytesPerFrame)
		}
	}
	fmt.Fprintf(out, "bytes/frame reduction %.1fx at %.2f MB/s (gate: >= %.1fx), hit rate %.3f -> %.3f\n",
		rep.BytesReduction, rep.ConstrainedMBps, minReduction, rep.HitLegacy, rep.HitCompact)
	if rep.BytesReduction < minReduction {
		return fmt.Errorf("bytes/frame reduction %.1fx below required %.1fx", rep.BytesReduction, minReduction)
	}
	if rep.HitCompact < rep.HitLegacy {
		return fmt.Errorf("compact peer hit rate %.3f below legacy %.3f — compression must not cost hits",
			rep.HitCompact, rep.HitLegacy)
	}
	return nil
}

// qualityReport mirrors the fields of eval.QualityReport this gate
// needs (benchgate stays stdlib-only, so it does not import eval).
type qualityReport struct {
	Frames     int `json:"frames"`
	DriftFrame int `json:"drift_frame"`
	Runs       []struct {
		Name           string  `json:"name"`
		TailAccuracy   float64 `json:"tail_accuracy"`
		LatencySavings float64 `json:"latency_savings"`
		Audits         int     `json:"audits"`
		AuditRefutes   int     `json:"audit_refutes"`
		Quarantines    int     `json:"quarantines"`
	} `json:"runs"`
	AccuracyRecovery    float64 `json:"accuracy_recovery"`
	SavingsRetention    float64 `json:"savings_retention"`
	UnprotectedAccuracy float64 `json:"unprotected_accuracy"`
}

// checkQuality enforces the cache-quality regression gate on a report
// written by `approxbench -drift`: under injected label drift the
// self-healing node must recover near-baseline accuracy without giving
// the cache's latency advantage back.
func checkQuality(path string, minRecovery, minRetention float64, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep qualityReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("%s: no runs", path)
	}
	audited := false
	for _, r := range rep.Runs {
		fmt.Fprintf(out, "%-12s tail-acc=%.3f savings=%.3f audits=%d refutes=%d quar=%d\n",
			r.Name, r.TailAccuracy, r.LatencySavings, r.Audits, r.AuditRefutes, r.Quarantines)
		if r.Audits > 0 {
			audited = true
		}
	}
	fmt.Fprintf(out, "accuracy recovery %.3f (gate: >= %.2f), savings retention %.3f (gate: >= %.2f) over %d frames\n",
		rep.AccuracyRecovery, minRecovery, rep.SavingsRetention, minRetention, rep.Frames)
	if !audited {
		return fmt.Errorf("no run performed any shadow audits — quality layer did not engage")
	}
	if rep.AccuracyRecovery < minRecovery {
		return fmt.Errorf("accuracy recovery %.3f below required %.2f (unprotected contrast %.3f)",
			rep.AccuracyRecovery, minRecovery, rep.UnprotectedAccuracy)
	}
	if rep.SavingsRetention < minRetention {
		return fmt.Errorf("savings retention %.3f below required %.2f", rep.SavingsRetention, minRetention)
	}
	return nil
}
