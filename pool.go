package approxcache

import (
	"fmt"

	"approxcache/internal/cachestore"
	"approxcache/internal/core"
	"approxcache/internal/dnn"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
)

// ShardStat is one cache-store shard's occupancy and contention
// counters.
type ShardStat = metrics.ShardStat

// BatcherStats summarizes the micro-batching scheduler's activity.
type BatcherStats = metrics.BatcherStats

// BatchClassifier is a classifier that can recognize several frames in
// one invocation, amortizing the model's fixed per-invocation cost
// across the batch. The simulated classifier implements it; NewPool
// requires it when Options.BatchSize enables micro-batching.
type BatchClassifier = dnn.BatchClassifier

// Pool serves many concurrent recognition sessions from one node. All
// sessions share the cache store (one stream's DNN result answers
// another's lookup), the statistics scoreboard, the classifier
// watchdog, and — when Options.BatchSize is set — a micro-batching
// scheduler that coalesces concurrent cache-miss classifications.
// Per-stream state (inertial gate, keyframes, last result) stays
// private, so streams never contaminate each other's motion reasoning.
//
// Each session is an ordinary *Cache; drive them from separate
// goroutines.
type Pool struct {
	pool     *core.Pool
	sessions []*Cache
	store    cachestore.Interface
	batcher  *dnn.Batcher
}

// NewPool builds a pool of sessions concurrent recognition sessions
// fronting classifier.
func NewPool(sessions int, classifier Classifier, opts Options) (*Pool, error) {
	if classifier == nil {
		return nil, fmt.Errorf("approxcache: nil classifier")
	}
	if sessions <= 0 {
		return nil, fmt.Errorf("approxcache: pool needs at least 1 session, got %d", sessions)
	}
	cfg := engineConfig(opts)
	clock := opts.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	store, err := newStore(cfg, opts, clock)
	if err != nil {
		return nil, err
	}
	cls := classifier
	var batcher *dnn.Batcher
	if opts.BatchSize > 1 {
		bc, ok := classifier.(BatchClassifier)
		if !ok {
			return nil, fmt.Errorf("approxcache: BatchSize %d needs a BatchClassifier, %T cannot batch",
				opts.BatchSize, classifier)
		}
		bcfg := dnn.BatcherConfig{
			MaxBatch:   opts.BatchSize,
			MaxWait:    opts.BatchWait,
			MaxPending: opts.BatchPending,
		}
		if bcfg.MaxWait <= 0 {
			bcfg.MaxWait = dnn.DefaultBatcherConfig().MaxWait
		}
		batcher, err = dnn.NewBatcher(bcfg, bc)
		if err != nil {
			return nil, fmt.Errorf("approxcache: batcher: %w", err)
		}
		cls = batcher
	}
	pool, err := core.NewPool(sessions, cfg, core.Deps{
		Clock:      clock,
		Classifier: cls,
		Store:      store,
		Peers:      opts.Peers,
	})
	if err != nil {
		if batcher != nil {
			batcher.Close()
		}
		return nil, fmt.Errorf("approxcache: %w", err)
	}
	caches := make([]*Cache, sessions)
	for i := range caches {
		caches[i] = &Cache{engine: pool.Session(i), store: store, clock: clock, cfg: cfg}
	}
	return &Pool{pool: pool, sessions: caches, store: store, batcher: batcher}, nil
}

// Size returns the number of sessions.
func (p *Pool) Size() int { return len(p.sessions) }

// Session returns session i's cache handle.
func (p *Pool) Session(i int) *Cache { return p.sessions[i] }

// Sessions returns all session handles, in index order.
func (p *Pool) Sessions() []*Cache { return p.sessions }

// Stats returns the scoreboard shared by every session.
func (p *Pool) Stats() *Stats { return p.pool.Stats() }

// Len returns the number of live entries in the shared store.
func (p *Pool) Len() int {
	if p.store == nil {
		return 0
	}
	return p.store.Len()
}

// ShardStats returns per-shard occupancy and contention counters, or
// nil when the pool runs on an unsharded store.
func (p *Pool) ShardStats() []ShardStat {
	if s, ok := p.store.(*cachestore.ShardedStore); ok {
		return s.ShardStats()
	}
	return nil
}

// BatcherStats returns the micro-batching scheduler's counters; ok is
// false when batching is disabled.
func (p *Pool) BatcherStats() (BatcherStats, bool) {
	if p.batcher == nil {
		return BatcherStats{}, false
	}
	return p.batcher.Stats(), true
}

// AdmissionSnapshot returns the shared overload limiter's state; ok is
// false when Options.Admission is disabled.
func (p *Pool) AdmissionSnapshot() (AdmissionSnapshot, bool) {
	return p.pool.AdmissionSnapshot()
}

// Close flushes and stops the micro-batching scheduler. Call it when
// the pool's streams have drained. A Process racing Close may have its
// inference refused with ErrBatcherClosed; the degradation ladder
// absorbs the refusal (cached or last-result answer) when it can.
func (p *Pool) Close() {
	if p.batcher != nil {
		p.batcher.Close()
	}
}
