package core

import (
	"math/rand"
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/p2p"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
	"approxcache/internal/trace"
)

// replayWorkload runs a full workload through an engine built from cfg
// and returns its stats.
func replayWorkload(t *testing.T, cfg Config, spec trace.Spec, peers *p2p.Client,
	storeCfg cachestore.Config) *metrics.SessionStats {
	t.Helper()
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	classifier, err := dnn.NewClassifier(dnn.MobileNetV2, w.Classes, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var store *cachestore.Store
	if cfg.Mode == ModeApprox {
		idx, err := lsh.NewHyperplane(cfg.Extractor.Dim(), 12, 4, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if storeCfg.Capacity == 0 {
			storeCfg.Capacity = 128
		}
		store, err = cachestore.New(storeCfg, idx, clock)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := New(cfg, Deps{Clock: clock, Classifier: classifier, Store: store, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	labels := make(map[string]bool)
	for _, l := range classifier.Labels() {
		labels[l] = true
	}
	prev := time.Duration(0)
	for _, fr := range w.Frames {
		win := w.IMUWindow(prev, fr.Offset)
		prev = fr.Offset
		res, err := eng.ProcessWithTruth(fr.Image, win, dnn.LabelOf(fr.Class))
		if err != nil {
			t.Fatalf("frame %d: %v", fr.Index, err)
		}
		// Per-frame invariants.
		if res.Label == "" || !labels[res.Label] {
			t.Fatalf("frame %d: label %q outside vocabulary", fr.Index, res.Label)
		}
		if res.Latency < 0 {
			t.Fatalf("frame %d: negative latency %v", fr.Index, res.Latency)
		}
		if res.EnergyMJ < 0 {
			t.Fatalf("frame %d: negative energy %v", fr.Index, res.EnergyMJ)
		}
		switch res.Source {
		case metrics.SourceIMU, metrics.SourceVideo, metrics.SourceLocal,
			metrics.SourcePeer, metrics.SourceDNN:
		default:
			t.Fatalf("frame %d: invalid source %q", fr.Index, res.Source)
		}
	}
	return eng.Stats()
}

// randomSpec builds a random but valid workload spec.
func randomSpec(r *rand.Rand) trace.Spec {
	regimes := []string{"stationary", "handheld", "walking", "panning"}
	n := 1 + r.Intn(4)
	segs := make([]trace.SegmentSpec, n)
	for i := range segs {
		segs[i] = trace.SegmentSpec{
			Regime: regimes[r.Intn(len(regimes))],
			Frames: 10 + r.Intn(40),
		}
	}
	return trace.Spec{
		Name:       "random",
		FPS:        5 + r.Intn(25),
		IMURateHz:  50 + r.Intn(100),
		NumClasses: 2 + r.Intn(8),
		ImageW:     48,
		ImageH:     48,
		Segments:   segs,
		Seed:       r.Int63n(1 << 30),
		ClassSkew:  r.Float64(),
	}
}

// Session-level invariants hold over arbitrary workloads: per-source
// counts sum to the frame total, rates are in [0,1], and the engine
// never errors.
func TestEngineInvariantsOnRandomWorkloads(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		spec := randomSpec(r)
		stats := replayWorkload(t, DefaultConfig(), spec, nil, cachestore.Config{})
		if stats.Frames() != spec.TotalFrames() {
			t.Fatalf("trial %d: frames %d, want %d", trial, stats.Frames(), spec.TotalFrames())
		}
		total := 0
		for _, n := range stats.CountBySource() {
			total += n
		}
		if total != stats.Frames() {
			t.Fatalf("trial %d: source counts sum %d != frames %d", trial, total, stats.Frames())
		}
		if hr := stats.HitRate(); hr < 0 || hr > 1 {
			t.Fatalf("trial %d: hit rate %v", trial, hr)
		}
		if acc := stats.Accuracy(); acc < 0 || acc > 1 {
			t.Fatalf("trial %d: accuracy %v", trial, acc)
		}
	}
}

// The engine keeps serving when every peer is unreachable: the peer
// gate degrades to a miss, never to an error.
func TestEngineSurvivesDeadPeers(t *testing.T) {
	net, err := simnet.New(simnet.DefaultLinkProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p2p.NewSimnetTransport("lonely", net)
	if err != nil {
		t.Fatal(err)
	}
	client, err := p2p.NewClient(p2p.DefaultClientConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	client.SetPeers([]string{"ghost-1", "ghost-2"}) // never registered
	spec := trace.WalkingTour(120, 7)
	stats := replayWorkload(t, DefaultConfig(), spec, client, cachestore.Config{})
	if stats.Frames() != 120 {
		t.Fatalf("frames = %d", stats.Frames())
	}
	queries, hits := stats.PeerQueries()
	if queries == 0 {
		t.Fatal("dead peers were never queried")
	}
	if hits != 0 {
		t.Fatalf("ghost peers produced %d hits", hits)
	}
}

// A TTL-bound store expires entries mid-run without breaking the
// pipeline; expired entries simply stop serving.
func TestEngineWithTTLStore(t *testing.T) {
	spec := trace.StationaryHeavy(150, 3)
	stats := replayWorkload(t, DefaultConfig(), spec, nil, cachestore.Config{
		Capacity: 128,
		TTL:      2 * time.Second, // well below the 10 s workload
	})
	if stats.Frames() != 150 {
		t.Fatalf("frames = %d", stats.Frames())
	}
	if stats.HitRate() == 0 {
		t.Fatal("TTL store produced no hits at all")
	}
}

// A tiny store forces constant eviction churn; the pipeline must stay
// correct (labels in vocabulary, accounting intact).
func TestEngineWithTinyStore(t *testing.T) {
	spec := trace.PanningSweep(200, 5)
	stats := replayWorkload(t, DefaultConfig(), spec, nil, cachestore.Config{
		Capacity: 2,
		Policy:   cachestore.LRU,
	})
	if stats.Frames() != 200 {
		t.Fatalf("frames = %d", stats.Frames())
	}
}

// The adaptive index is a drop-in replacement for the plain one.
func TestEngineWithAdaptiveIndex(t *testing.T) {
	spec := trace.HandheldMix(150, 11)
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	classifier, err := dnn.NewClassifier(dnn.MobileNetV2, w.Classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	idx, err := lsh.NewAdaptive(lsh.DefaultAdaptiveConfig(cfg.Extractor.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	store, err := cachestore.New(cachestore.Config{Capacity: 128}, idx, clock)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, Deps{Clock: clock, Classifier: classifier, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(0)
	for _, fr := range w.Frames {
		win := w.IMUWindow(prev, fr.Offset)
		prev = fr.Offset
		if _, err := eng.ProcessWithTruth(fr.Image, win, dnn.LabelOf(fr.Class)); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().HitRate() < 0.5 {
		t.Fatalf("adaptive-index hit rate = %v", eng.Stats().HitRate())
	}
}
