// Livepeers: two approximate-cache nodes exchanging recognition results
// over real TCP sockets on loopback — the same peer protocol the
// simulated experiments use, running on an actual network stack.
//
// Run with: go run ./examples/livepeers
package main

import (
	"fmt"
	"log"
	"time"

	"approxcache"
)

const sharedClassSeed = 1337

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildNode(seed int64) (*approxcache.Cache, *approxcache.Workload, error) {
	spec := approxcache.StationaryHeavyWorkload(300, seed)
	spec.ClassSeed = sharedClassSeed
	w, err := approxcache.GenerateWorkload(spec)
	if err != nil {
		return nil, nil, err
	}
	clf, err := approxcache.NewSimulatedClassifier(approxcache.MobileNetV2, w, seed)
	if err != nil {
		return nil, nil, err
	}
	cache, err := approxcache.New(clf, approxcache.Options{
		Clock: approxcache.NewVirtualClock(),
	})
	if err != nil {
		return nil, nil, err
	}
	return cache, w, nil
}

func replay(cache *approxcache.Cache, w *approxcache.Workload) error {
	prev := time.Duration(0)
	for _, fr := range w.Frames {
		win := w.IMUWindow(prev, fr.Offset)
		prev = fr.Offset
		if _, err := cache.ProcessWithTruth(fr.Image, win, approxcache.LabelOf(fr.Class)); err != nil {
			return err
		}
	}
	return nil
}

func report(name string, cache *approxcache.Cache) {
	stats := cache.Stats()
	counts := stats.CountBySource()
	q, h := stats.PeerQueries()
	fmt.Printf("%s: hit-rate %.1f%%  dnn-runs %d  peer-hits %d (of %d queries)  mean latency %v\n",
		name, stats.HitRate()*100, counts[approxcache.SourceDNN],
		counts[approxcache.SourcePeer], q, stats.Latency().Mean().Round(10*time.Microsecond))
	_ = h
}

func run() error {
	// Node A: sees the scenes first and serves its cache over TCP.
	nodeA, workA, err := buildNode(11)
	if err != nil {
		return err
	}
	srv, err := nodeA.ServeTCP("node-a", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			log.Printf("close server: %v", cerr)
		}
	}()
	fmt.Printf("node-a serving on %s\n", srv.Addr())
	if err := replay(nodeA, workA); err != nil {
		return err
	}
	report("node-a (worked alone)", nodeA)

	// Node B: different route past the same objects, peered with A
	// over real sockets. Its cold-cache misses are answered by A.
	nodeB, workB, err := buildNode(23)
	if err != nil {
		return err
	}
	client, err := nodeB.DialPeers(srv.Addr())
	if err != nil {
		return err
	}
	pong, rtt, err := client.Ping("node-b", srv.Addr())
	if err != nil {
		return fmt.Errorf("ping: %w", err)
	}
	fmt.Printf("node-b connected to %q (%d cached entries, rtt %v)\n",
		pong.From, pong.Entries, rtt.Round(10*time.Microsecond))
	if err := replay(nodeB, workB); err != nil {
		return err
	}
	report("node-b (peered with A)", nodeB)

	counts := nodeB.Stats().CountBySource()
	if counts[approxcache.SourcePeer] > 0 {
		fmt.Printf("\nnode-b avoided %d DNN runs by asking node-a over TCP\n",
			counts[approxcache.SourcePeer])
	}
	return nil
}
