package feature

import (
	"fmt"
	"math"

	"approxcache/internal/vision"
)

// DCTExtractor computes a perceptual-hash style descriptor: the frame
// is downsampled to Size×Size, transformed with a 2-D DCT-II, and the
// low-frequency Keep×Keep corner (minus the DC term) becomes the
// feature vector. Low-frequency coefficients capture global scene
// structure and are robust to noise and small shifts — the same reason
// pHash uses them for near-duplicate detection.
type DCTExtractor struct {
	// Size is the downsampled side length (e.g. 32).
	Size int
	// Keep is the retained low-frequency block side (e.g. 8).
	Keep int
}

var _ Extractor = DCTExtractor{}

// NewDCTExtractor validates and returns a DCT extractor.
func NewDCTExtractor(size, keep int) (DCTExtractor, error) {
	if size <= 0 {
		return DCTExtractor{}, fmt.Errorf("feature: dct size must be positive, got %d", size)
	}
	if keep <= 0 || keep > size {
		return DCTExtractor{}, fmt.Errorf("feature: dct keep must be in [1,%d], got %d", size, keep)
	}
	return DCTExtractor{Size: size, Keep: keep}, nil
}

// DefaultDCTExtractor returns the pHash-standard 32→8 configuration.
func DefaultDCTExtractor() DCTExtractor {
	return DCTExtractor{Size: 32, Keep: 8}
}

// Dim returns Keep*Keep - 1 (the DC coefficient is dropped: it is just
// mean brightness, which the brightness perturbation shifts freely).
func (d DCTExtractor) Dim() int { return d.Keep*d.Keep - 1 }

// Name returns "dct<size>k<keep>".
func (d DCTExtractor) Name() string { return fmt.Sprintf("dct%dk%d", d.Size, d.Keep) }

// Extract computes the descriptor.
func (d DCTExtractor) Extract(im *vision.Image) (Vector, error) {
	if im == nil || len(im.Pix) == 0 {
		return nil, fmt.Errorf("feature: empty image")
	}
	if im.W < d.Size || im.H < d.Size {
		return nil, fmt.Errorf("feature: image %dx%d smaller than dct size %d",
			im.W, im.H, d.Size)
	}
	small := downsample(im, d.Size)
	coeffs := dct2(small, d.Size, d.Keep)
	out := make(Vector, 0, d.Dim())
	for v := 0; v < d.Keep; v++ {
		for u := 0; u < d.Keep; u++ {
			if u == 0 && v == 0 {
				continue // drop DC
			}
			out = append(out, coeffs[v*d.Keep+u])
		}
	}
	// Skip normalization when the AC energy is numerical dust (e.g. a
	// constant image): scaling noise up to unit norm would fabricate
	// structure out of rounding error.
	if out.Norm() > 1e-9 {
		out.Normalize()
	}
	return out, nil
}

// downsample box-filters im to size×size.
func downsample(im *vision.Image, size int) []float64 {
	out := make([]float64, size*size)
	for gy := 0; gy < size; gy++ {
		y0 := gy * im.H / size
		y1 := (gy + 1) * im.H / size
		for gx := 0; gx < size; gx++ {
			x0 := gx * im.W / size
			x1 := (gx + 1) * im.W / size
			var sum float64
			for y := y0; y < y1; y++ {
				row := im.Pix[y*im.W : y*im.W+im.W]
				for x := x0; x < x1; x++ {
					sum += row[x]
				}
			}
			out[gy*size+gx] = sum / float64((y1-y0)*(x1-x0))
		}
	}
	return out
}

// dct2 computes the keep×keep low-frequency corner of the 2-D DCT-II of
// a size×size image. Separable implementation: DCT over rows, then
// over columns, computing only the needed output frequencies.
func dct2(pix []float64, size, keep int) []float64 {
	// Row transform: rows × keep frequencies.
	rows := make([]float64, size*keep)
	for y := 0; y < size; y++ {
		for u := 0; u < keep; u++ {
			var sum float64
			for x := 0; x < size; x++ {
				sum += pix[y*size+x] *
					math.Cos(math.Pi*float64(u)*(2*float64(x)+1)/(2*float64(size)))
			}
			rows[y*keep+u] = sum
		}
	}
	// Column transform: keep × keep.
	out := make([]float64, keep*keep)
	for v := 0; v < keep; v++ {
		for u := 0; u < keep; u++ {
			var sum float64
			for y := 0; y < size; y++ {
				sum += rows[y*keep+u] *
					math.Cos(math.Pi*float64(v)*(2*float64(y)+1)/(2*float64(size)))
			}
			out[v*keep+u] = sum * orthoScale(u, size) * orthoScale(v, size)
		}
	}
	return out
}

// orthoScale is the orthonormal DCT-II scale factor.
func orthoScale(k, n int) float64 {
	if k == 0 {
		return math.Sqrt(1 / float64(n))
	}
	return math.Sqrt(2 / float64(n))
}
