package lsh

import (
	"math/bits"
	"math/rand"
	"testing"

	"approxcache/internal/feature"
)

// probeSeq materializes the full probe sequence for one (sig, margins)
// pair using fresh scratch, the way nearestTuned drives probeGen.
func probeSeq(sig uint64, absMargins []float64, n int) []uint64 {
	nbits := len(absMargins)
	var g probeGen
	g.init(sig, nbits,
		append([]float64(nil), absMargins...),
		make([]float64, nbits),
		make([]int, nbits),
		nil)
	var out []uint64
	for len(out) < n {
		s, ok := g.next()
		if !ok {
			break
		}
		out = append(out, s)
	}
	return out
}

// TestProbeSequenceExhaustive checks the shift/expand generator against
// its contract on a small signature space: the unperturbed bucket comes
// first, every perturbation of the nbits-bit signature is visited
// exactly once, and perturbation costs (summed flipped margins) never
// decrease along the sequence.
func TestProbeSequenceExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		const nbits = 5
		margins := make([]float64, nbits)
		for b := range margins {
			margins[b] = rng.Float64()
		}
		sig := rng.Uint64() & (1<<nbits - 1)
		seq := probeSeq(sig, margins, 1<<nbits+8)
		if len(seq) != 1<<nbits {
			t.Fatalf("trial %d: got %d probes, want %d", trial, len(seq), 1<<nbits)
		}
		if seq[0] != sig {
			t.Fatalf("trial %d: first probe %x, want unperturbed %x", trial, seq[0], sig)
		}
		seen := make(map[uint64]bool, len(seq))
		prev := -1.0
		for i, s := range seq {
			if seen[s] {
				t.Fatalf("trial %d: probe %d revisits signature %x", trial, i, s)
			}
			seen[s] = true
			var cost float64
			for m := s ^ sig; m != 0; m &= m - 1 {
				cost += margins[bits.TrailingZeros64(m)]
			}
			if cost < prev-1e-12 {
				t.Fatalf("trial %d: probe %d cost %g after %g", trial, i, cost, prev)
			}
			prev = cost
		}
	}
}

// TestProbeSequenceDeterministic pins the sequence bit-for-bit across
// regenerations, including under duplicated margins where only the
// mask/bit-index tie-breaks fix the order.
func TestProbeSequenceDeterministic(t *testing.T) {
	margins := []float64{0.3, 0.1, 0.3, 0.1, 0.2, 0.1}
	first := probeSeq(0x2a, margins, 1<<len(margins))
	for run := 0; run < 10; run++ {
		again := probeSeq(0x2a, margins, 1<<len(margins))
		if len(again) != len(first) {
			t.Fatalf("run %d: length %d, want %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d: probe %d = %x, want %x", run, i, again[i], first[i])
			}
		}
	}
}

// clusteredVecs builds the hit-heavy population the tuned pipeline
// targets: all-positive cluster centers (image-descriptor-like), entries
// scattered sigma around a center, queries perturbing resident entries
// by qsigma.
func clusteredVecs(rng *rand.Rand, n, dim, clusters int, sigma float64) []feature.Vector {
	centers := make([]feature.Vector, clusters)
	for c := range centers {
		centers[c] = make(feature.Vector, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64()
		}
	}
	out := make([]feature.Vector, n)
	for i := range out {
		v := make(feature.Vector, dim)
		center := centers[i%clusters]
		for d := range v {
			v[d] = center[d] + rng.NormFloat64()*sigma
		}
		out[i] = v
	}
	return out
}

func perturb(rng *rand.Rand, v feature.Vector, sigma float64) feature.Vector {
	q := make(feature.Vector, len(v))
	for d := range q {
		q[d] = v[d] + rng.NormFloat64()*sigma
	}
	return q
}

// checkKeepSet asserts the pipeline's safety property on one seeded
// hit-heavy dataset: any exact top-k neighbor that the multi-probe walk
// surfaces as a candidate must survive the default Hamming prefilter
// AND the quantized re-rank — i.e. the sketch/quant stages may only
// drop junk, never a true neighbor the probes found.
func checkKeepSet(t *testing.T, seed int64, sigma, qsigma float64) {
	t.Helper()
	// Cluster size (8) stays under the default quantized keep width
	// (RerankK·k = 16): the re-rank contract is that the int8 stage
	// separates clusters, not that it ranks near-duplicates within one —
	// sizing the keep width to the expected bucket crowd is the
	// caller's tuning knob (see LookupConfig in internal/eval).
	const (
		dim      = 16
		n        = 256
		clusters = 32
		k        = 4
		bits     = 8
		tables   = 2
		probes   = 4
		queries  = 32
	)
	rng := rand.New(rand.NewSource(seed))
	vecs := clusteredVecs(rng, n, dim, clusters, sigma)

	exact, err := NewExact(dim)
	if err != nil {
		t.Fatal(err)
	}
	tunedCfg := DefaultTuning()
	tunedCfg.Probes = probes
	tuned, err := NewHyperplaneTuned(dim, bits, tables, seed, tunedCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same probe walk, but a pass-everything Hamming
	// threshold and no quantized stage: its candidate set is the raw
	// multi-probe walk the prefilter must not over-trim.
	rawCfg := Tuning{Probes: probes, SketchBits: tunedCfg.SketchBits}
	rawCfg.MaxHamming = tunedCfg.SketchBits
	raw, err := NewHyperplaneTuned(dim, bits, tables, seed, rawCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		for _, idx := range []Index{exact, tuned, raw} {
			if err := idx.Insert(ID(i), v); err != nil {
				t.Fatal(err)
			}
		}
	}

	nbuf := make([]Neighbor, 0, k)
	cbuf := make([]ID, 0, n)
	for qi := 0; qi < queries; qi++ {
		q := perturb(rng, vecs[rng.Intn(n)], qsigma)
		truth, err := exact.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := raw.CandidatesInto(q, cbuf)
		if err != nil {
			t.Fatal(err)
		}
		inWalk := make(map[ID]bool, len(cands))
		for _, id := range cands {
			inWalk[id] = true
		}
		got, err := tuned.NearestInto(q, k, nbuf)
		if err != nil {
			t.Fatal(err)
		}
		kept := make(map[ID]bool, len(got))
		for _, nb := range got {
			kept[nb.ID] = true
		}
		for _, tr := range truth {
			if inWalk[tr.ID] && !kept[tr.ID] {
				t.Fatalf("seed %d sigma %g qsigma %g query %d: exact neighbor %d (dist %g) surfaced by the probe walk but dropped by prefilter/re-rank",
					seed, sigma, qsigma, qi, tr.ID, tr.Distance)
			}
		}
		nbuf, cbuf = got[:0], cands[:0]
	}
}

// TestPrefilterKeepSetProperty runs the keep-set property over several
// seeds and spreads, pinning the default MaxHamming/RerankK choices.
func TestPrefilterKeepSetProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		checkKeepSet(t, seed, 0.03, 0.01)
		checkKeepSet(t, seed, 0.01, 0.005)
	}
}

// FuzzPrefilterKeepSet fuzzes the same property across dataset seeds
// and spreads (clamped to the near-duplicate regime the threshold is
// specified for).
func FuzzPrefilterKeepSet(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(10))
	f.Add(int64(99), uint8(5), uint8(2))
	f.Add(int64(-3), uint8(49), uint8(27))
	f.Fuzz(func(t *testing.T, seed int64, sigmaMil, qsigmaMil uint8) {
		sigma := 0.005 + float64(sigmaMil%46)/1000
		qsigma := 0.002 + float64(qsigmaMil%28)/1000
		checkKeepSet(t, seed, sigma, qsigma)
	})
}

// recallAgainst measures idx's top-k recall against exact ground truth
// over the given queries.
func recallAgainst(t *testing.T, idx Index, exact Index, queries []feature.Vector, k int) float64 {
	t.Helper()
	hits, want := 0, 0
	for _, q := range queries {
		truth, err := exact.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range truth {
			want++
			for _, nb := range got {
				if nb.ID == tr.ID {
					hits++
					break
				}
			}
		}
	}
	return float64(hits) / float64(want)
}

// TestMultiProbeRecallSweep pins the tentpole's table-halving claim on
// a fragmented-bucket workload (signed Gaussian clusters, where plain
// LSH actually misses): multi-probe at T/2 tables must reach at least
// the exact-bucket recall at T tables, and recall must be monotone in
// the probe count (more probes visit a superset of buckets).
func TestMultiProbeRecallSweep(t *testing.T) {
	const (
		dim     = 32
		n       = 512
		k       = 2
		bits    = 10
		tables  = 4
		seed    = 17
		queries = 128
	)
	rng := rand.New(rand.NewSource(seed))
	centers := make([]feature.Vector, 64)
	for c := range centers {
		centers[c] = make(feature.Vector, dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64()
		}
	}
	vecs := make([]feature.Vector, n)
	for i := range vecs {
		v := make(feature.Vector, dim)
		for d := range v {
			v[d] = centers[i%len(centers)][d] + rng.NormFloat64()*0.05
		}
		vecs[i] = v
	}
	// Queries drift well off their source entry (still far closer to its
	// cluster than to any other), so single-bucket lookups genuinely
	// miss and recall separates the configurations.
	qs := make([]feature.Vector, queries)
	for i := range qs {
		qs[i] = perturb(rng, vecs[rng.Intn(n)], 0.15)
	}

	exact, err := NewExact(dim)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewHyperplane(dim, bits, tables, seed)
	if err != nil {
		t.Fatal(err)
	}
	indexes := []Index{exact, base}
	probeCounts := []int{1, 2, 4, 8, 16}
	multi := make([]*HyperplaneIndex, len(probeCounts))
	for i, p := range probeCounts {
		m, err := NewHyperplaneTuned(dim, bits, tables/2, seed, Tuning{Probes: p})
		if err != nil {
			t.Fatal(err)
		}
		multi[i] = m
		indexes = append(indexes, m)
	}
	for i, v := range vecs {
		for _, idx := range indexes {
			if err := idx.Insert(ID(i), v); err != nil {
				t.Fatal(err)
			}
		}
	}

	baseRecall := recallAgainst(t, base, exact, qs, k)
	if baseRecall >= 1 {
		t.Fatalf("base recall %.3f: workload too easy to discriminate", baseRecall)
	}
	prev := -1.0
	for i, p := range probeCounts {
		r := recallAgainst(t, multi[i], exact, qs, k)
		t.Logf("probes=%2d tables=%d recall=%.3f (base tables=%d recall=%.3f)",
			p, tables/2, r, tables, baseRecall)
		if r < prev {
			t.Fatalf("recall not monotone in probes: %.3f at probes=%d after %.3f", r, p, prev)
		}
		prev = r
		if p >= tables && r < baseRecall {
			t.Errorf("multi-probe probes=%d at %d tables recall %.3f below exact-bucket at %d tables %.3f",
				p, tables/2, r, tables, baseRecall)
		}
	}
}

// TestMultiProbeExhaustiveMatchesExact: with probes covering the whole
// signature space of every table, the candidate walk sees every entry,
// so the tuned pipeline (sketch prefilter off) must reproduce the exact
// index verbatim.
func TestMultiProbeExhaustiveMatchesExact(t *testing.T) {
	const (
		dim  = 8
		bits = 4
		n    = 128
		k    = 3
	)
	rng := rand.New(rand.NewSource(5))
	exact, err := NewExact(dim)
	if err != nil {
		t.Fatal(err)
	}
	all, err := NewHyperplaneTuned(dim, bits, 1, 5, Tuning{Probes: 1 << bits})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		if err := exact.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
		if err := all.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 64; qi++ {
		q := randVec(rng, dim)
		want, err := exact.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := all.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d neighbors, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Distance != want[i].Distance {
				t.Fatalf("query %d neighbor %d: got (%d, %v), want (%d, %v)",
					qi, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
			}
		}
	}
}

// TestTunedRecomputeOnReinsert pins the recompute-on-import contract:
// sketches and quantized codes are pure functions of (seed, vector), so
// an index whose arena slots were churned by remove/re-insert must
// answer bit-identically to a freshly built one.
func TestTunedRecomputeOnReinsert(t *testing.T) {
	const (
		dim = 12
		n   = 200
		k   = 4
	)
	rng := rand.New(rand.NewSource(23))
	vecs := clusteredVecs(rng, n, dim, 10, 0.03)

	fresh, err := NewHyperplaneTuned(dim, 8, 2, 23, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	churned, err := NewHyperplaneTuned(dim, 8, 2, 23, DefaultTuning())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if err := fresh.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
		if err := churned.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	// Churn half the population so re-inserted vectors land in recycled
	// arena slots with stale sketch/code bytes behind them.
	for i := 0; i < n; i += 2 {
		churned.Remove(ID(i))
	}
	for i := 0; i < n; i += 2 {
		if err := churned.Insert(ID(i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 50; qi++ {
		q := perturb(rng, vecs[rng.Intn(n)], 0.01)
		want, err := fresh.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := churned.Nearest(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d neighbors, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d neighbor %d: got %+v, want %+v", qi, i, got[i], want[i])
			}
		}
	}
}
