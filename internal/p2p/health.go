package p2p

import (
	"errors"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"approxcache/internal/simnet"
)

// ErrClass is a coarse failure taxonomy for peer exchanges. The health
// tracker and circuit breaker key their policies off it: timeouts and
// unreachable peers are strong down signals, a single lost message on a
// lossy radio link is weak evidence.
type ErrClass int

// Failure classes, roughly ordered from benign to severe.
const (
	// ErrClassNone marks a successful exchange.
	ErrClassNone ErrClass = iota
	// ErrClassLost marks a message dropped by link loss (expected at a
	// low rate on wireless links).
	ErrClassLost
	// ErrClassTimeout marks an exchange that exceeded its deadline or
	// the per-frame peer budget.
	ErrClassTimeout
	// ErrClassUnreachable marks a peer that is crashed, partitioned, or
	// unknown to the network.
	ErrClassUnreachable
	// ErrClassBadResponse marks a response that failed to decode or
	// carried an unexpected message kind.
	ErrClassBadResponse
	// ErrClassOther marks any remaining failure.
	ErrClassOther
)

// String returns the class name.
func (c ErrClass) String() string {
	switch c {
	case ErrClassNone:
		return "ok"
	case ErrClassLost:
		return "lost"
	case ErrClassTimeout:
		return "timeout"
	case ErrClassUnreachable:
		return "unreachable"
	case ErrClassBadResponse:
		return "bad-response"
	default:
		return "other"
	}
}

// Failure reports whether the class is a failed exchange.
func (c ErrClass) Failure() bool { return c != ErrClassNone }

// ErrBudgetExceeded marks a peer answer that arrived after the
// per-frame peer budget expired; the answer is discarded and the
// overrun is charged to the peer as a timeout.
var ErrBudgetExceeded = errors.New("p2p: peer budget exceeded")

// Classify maps a transport/protocol error to its failure class. nil
// classifies as ErrClassNone.
func Classify(err error) ErrClass {
	if err == nil {
		return ErrClassNone
	}
	switch {
	case errors.Is(err, ErrBudgetExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		return ErrClassTimeout
	case errors.Is(err, simnet.ErrLost):
		return ErrClassLost
	case errors.Is(err, simnet.ErrPartitioned),
		errors.Is(err, simnet.ErrCrashed),
		errors.Is(err, simnet.ErrUnknownNode):
		return ErrClassUnreachable
	case errors.Is(err, ErrTruncated), errors.Is(err, ErrUnknownKind),
		errors.Is(err, ErrFrameTooLarge), errors.Is(err, ErrWireVersion):
		return ErrClassBadResponse
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return ErrClassTimeout
	}
	var operr *net.OpError
	if errors.As(err, &operr) {
		return ErrClassUnreachable
	}
	return ErrClassOther
}

// HealthConfig tunes the per-peer health EWMAs.
type HealthConfig struct {
	// Alpha is the EWMA smoothing factor in (0,1]; higher weights
	// recent samples more. Zero selects the default (0.3).
	Alpha float64
}

// Validate reports whether the configuration is usable.
func (c HealthConfig) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return errors.New("p2p: health Alpha must be in [0,1]")
	}
	return nil
}

// DefaultHealthConfig returns the standard smoothing policy.
func DefaultHealthConfig() HealthConfig { return HealthConfig{Alpha: 0.3} }

// PeerHealth is a snapshot of one peer's observed behaviour.
type PeerHealth struct {
	// Peer names the peer.
	Peer string
	// Successes and Failures count completed exchanges by outcome.
	Successes, Failures int
	// ConsecFailures counts failures since the last success.
	ConsecFailures int
	// Timeouts counts deadline/budget overruns.
	Timeouts int
	// LatencyEWMA is the smoothed round-trip time of exchanges.
	LatencyEWMA time.Duration
	// SuccessEWMA is the smoothed success rate in [0,1].
	SuccessEWMA float64
	// LastClass is the most recent exchange's failure class.
	LastClass ErrClass
	// State is the peer's circuit-breaker state.
	State BreakerState
}

// peerHealth is the mutable tracker state for one peer.
type peerHealth struct {
	successes, failures int
	consecFailures      int
	timeouts            int
	latencyEWMA         float64 // nanoseconds
	successEWMA         float64
	sampled             bool
	lastClass           ErrClass
}

// HealthTracker records per-peer exchange outcomes and latency EWMAs.
// It is the observational half of the resilience layer; the Breaker is
// the policy half. HealthTracker is safe for concurrent use.
type HealthTracker struct {
	cfg HealthConfig

	mu    sync.Mutex
	peers map[string]*peerHealth
}

// NewHealthTracker builds a tracker with cfg (zero fields defaulted).
func NewHealthTracker(cfg HealthConfig) (*HealthTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultHealthConfig().Alpha
	}
	return &HealthTracker{cfg: cfg, peers: make(map[string]*peerHealth)}, nil
}

// Observe records one exchange with peer: its round-trip time and
// failure class (ErrClassNone for success).
func (t *HealthTracker) Observe(peer string, rtt time.Duration, class ErrClass) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[peer]
	if p == nil {
		p = &peerHealth{}
		t.peers[peer] = p
	}
	alpha := t.cfg.Alpha
	outcome := 1.0
	if class.Failure() {
		outcome = 0.0
		p.failures++
		p.consecFailures++
		if class == ErrClassTimeout {
			p.timeouts++
		}
	} else {
		p.successes++
		p.consecFailures = 0
	}
	if !p.sampled {
		p.latencyEWMA = float64(rtt)
		p.successEWMA = outcome
		p.sampled = true
	} else {
		p.latencyEWMA += alpha * (float64(rtt) - p.latencyEWMA)
		p.successEWMA += alpha * (outcome - p.successEWMA)
	}
	p.lastClass = class
}

// Forget drops all state for peer (e.g. after it leaves the roster).
func (t *HealthTracker) Forget(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.peers, peer)
}

// Peer returns the snapshot for one peer, if observed. The breaker
// State field is left at its zero value; Client.Health fills it.
func (t *HealthTracker) Peer(name string) (PeerHealth, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[name]
	if !ok {
		return PeerHealth{}, false
	}
	return snapshotHealth(name, p), true
}

// Snapshot returns all observed peers, sorted by name. Breaker State
// fields are zero; Client.Health fills them.
func (t *HealthTracker) Snapshot() []PeerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PeerHealth, 0, len(t.peers))
	for name, p := range t.peers {
		out = append(out, snapshotHealth(name, p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

func snapshotHealth(name string, p *peerHealth) PeerHealth {
	return PeerHealth{
		Peer:           name,
		Successes:      p.successes,
		Failures:       p.failures,
		ConsecFailures: p.consecFailures,
		Timeouts:       p.timeouts,
		LatencyEWMA:    time.Duration(p.latencyEWMA),
		SuccessEWMA:    p.successEWMA,
		LastClass:      p.lastClass,
	}
}
