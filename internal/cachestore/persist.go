package cachestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"approxcache/internal/feature"
)

// snapshotFormatVersion guards against incompatible snapshot files.
const snapshotFormatVersion = 1

// ErrCorruptSnapshot is returned by Import when the snapshot cannot be
// decoded or fails validation — a truncated write, a partial download,
// bit rot. The store is left exactly as it was: a damaged warm-start
// file must never poison a running cache, it just means a cold start.
var ErrCorruptSnapshot = errors.New("cachestore: corrupt snapshot")

// wireEntry is the serialized form of one cache entry. Timestamps and
// hit counts are deliberately not persisted: an imported entry starts a
// fresh life under the importer's clock and policy.
type wireEntry struct {
	Vec        []float64 `json:"vec"`
	Label      string    `json:"label"`
	Confidence float64   `json:"confidence"`
	Source     string    `json:"source"`
	// SavedCostMicros carries the avoided cost in microseconds
	// (encoding/json has no native duration support).
	SavedCostMicros int64 `json:"savedCostMicros"`
}

// wireSnapshot is the snapshot file layout.
type wireSnapshot struct {
	Version int         `json:"version"`
	Entries []wireEntry `json:"entries"`
}

// Export writes all live entries to w as JSON. The snapshot can warm a
// fresh store on another device or a later session.
func (s *Store) Export(w io.Writer) error {
	entries := s.Snapshot()
	out := wireSnapshot{
		Version: snapshotFormatVersion,
		Entries: make([]wireEntry, 0, len(entries)),
	}
	for _, e := range entries {
		out.Entries = append(out.Entries, wireEntry{
			Vec:             e.Vec,
			Label:           e.Label,
			Confidence:      e.Confidence,
			Source:          e.Source,
			SavedCostMicros: e.SavedCost.Microseconds(),
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("cachestore: export: %w", err)
	}
	return nil
}

// Import reads a snapshot from r and inserts its entries, subject to
// the store's normal capacity and eviction rules. It returns how many
// entries were inserted. Imported entries keep their labels and costs
// but start with fresh recency/frequency state.
//
// The snapshot is fully decoded and validated before anything is
// inserted: a truncated or corrupt file returns ErrCorruptSnapshot
// (wrapped, with detail) and leaves the store untouched.
func (s *Store) Import(r io.Reader) (int, error) {
	var in wireSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if in.Version != snapshotFormatVersion {
		return 0, fmt.Errorf("%w: version %d, want %d",
			ErrCorruptSnapshot, in.Version, snapshotFormatVersion)
	}
	for i, e := range in.Entries {
		if len(e.Vec) == 0 || e.Label == "" {
			return 0, fmt.Errorf("%w: entry %d invalid", ErrCorruptSnapshot, i)
		}
	}
	inserted := 0
	for i, e := range in.Entries {
		if _, err := s.Insert(feature.Vector(e.Vec), e.Label, e.Confidence, e.Source,
			time.Duration(e.SavedCostMicros)*time.Microsecond); err != nil {
			return inserted, fmt.Errorf("cachestore: import entry %d: %w", i, err)
		}
		inserted++
	}
	return inserted, nil
}
