package p2p

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/simclock"
	"approxcache/internal/simnet"
)

// Transport moves encoded messages between this node and named peers.
// Implementations report the (real or simulated) time each exchange
// took so callers can charge it to their clock.
type Transport interface {
	// Call round-trips req to peer and returns the response payload.
	Call(peer string, req []byte) (resp []byte, rtt time.Duration, err error)
	// Send delivers a one-way payload to peer.
	Send(peer string, payload []byte) (cost time.Duration, err error)
}

// RemoteHit is the best answer obtained from the peer set.
type RemoteHit struct {
	// Peer names the peer that answered.
	Peer string
	// Label is the reused recognition label.
	Label string
	// Confidence is the peer's vote confidence.
	Confidence float64
	// Distance is the peer's best supporting distance.
	Distance float64
	// RTT is the round-trip time of the winning exchange.
	RTT time.Duration
}

// Observer receives resilience events as the client produces them, so
// the pipeline's session stats can surface them. All methods may be
// called concurrently; a nil observer is never invoked.
type Observer interface {
	// PeerTimeout fires when an exchange with peer overran its
	// deadline or the per-frame budget.
	PeerTimeout(peer string)
	// BreakerTrip fires when peer's circuit trips (or re-trips) open.
	BreakerTrip(peer string)
	// BreakerRecovery fires when peer's circuit closes again.
	BreakerRecovery(peer string)
}

// ClientConfig parameterizes the querying side.
type ClientConfig struct {
	// K is the neighbor count requested from each peer.
	K int
	// MaxDistance filters peer answers: hits farther than this are
	// ignored (the requester applies its own reuse radius).
	MaxDistance float64
	// GossipFanout caps how many peers each fresh result is shared
	// with. Zero shares with all peers.
	GossipFanout int
	// GossipAttempts is the per-peer delivery attempt bound for
	// gossip, including the first try. Zero selects the default (2).
	// Retries happen off the recognition hot path: their backoff is
	// not charged to the frame.
	GossipAttempts int
	// QueryBudget is the default per-query time budget applied by
	// Query: answers arriving later are discarded (and charged to the
	// peer as a timeout), and the charged cost is capped at the
	// budget. Zero disables the cap. The engine overrides it per frame
	// via QueryFrame with a budget derived from DNN latency.
	QueryBudget time.Duration
	// Health tunes the per-peer health EWMAs (zero value = defaults).
	Health HealthConfig
	// Breaker tunes the per-peer circuit breaker (zero value =
	// defaults). Set Breaker.Disabled to bypass it entirely.
	Breaker BreakerConfig
	// Clock drives breaker backoff timing. Nil selects the wall
	// clock; experiments inject their virtual clock so circuits heal
	// in simulated time.
	Clock simclock.Clock
}

// Validate reports whether the configuration is usable.
func (c ClientConfig) Validate() error {
	if c.K <= 0 || c.K > 255 {
		return fmt.Errorf("p2p: client K must be in [1,255], got %d", c.K)
	}
	if c.MaxDistance <= 0 {
		return fmt.Errorf("p2p: client MaxDistance must be positive, got %v", c.MaxDistance)
	}
	if c.GossipFanout < 0 {
		return fmt.Errorf("p2p: GossipFanout must be non-negative, got %d", c.GossipFanout)
	}
	if c.GossipAttempts < 0 {
		return fmt.Errorf("p2p: GossipAttempts must be non-negative, got %d", c.GossipAttempts)
	}
	if c.QueryBudget < 0 {
		return fmt.Errorf("p2p: QueryBudget must be non-negative, got %v", c.QueryBudget)
	}
	if err := c.Health.Validate(); err != nil {
		return err
	}
	return c.Breaker.Validate()
}

// DefaultClientConfig returns the standard querying policy.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{K: 4, MaxDistance: 0.25, GossipFanout: 0, GossipAttempts: 2}
}

// Client queries and gossips to a set of peers over a Transport.
//
// Client is the guarded side of the P2P reuse path: every exchange
// feeds a per-peer health tracker, and a circuit breaker excludes
// misbehaving peers from the fan-out until a backed-off half-open
// probe shows them healthy again. When every peer is open the client
// degrades to local-only operation at zero cost instead of stalling
// the frame. Client is safe for concurrent use.
type Client struct {
	cfg       ClientConfig
	transport Transport
	health    *HealthTracker
	breaker   *Breaker

	mu       sync.Mutex
	peers    []string
	digests  map[string]Digest
	skipped  int
	degraded int
	observer Observer
}

// NewClient builds a client over transport.
func NewClient(cfg ClientConfig, transport Transport) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if transport == nil {
		return nil, fmt.Errorf("p2p: nil transport")
	}
	if cfg.GossipAttempts == 0 {
		cfg.GossipAttempts = 2
	}
	health, err := NewHealthTracker(cfg.Health)
	if err != nil {
		return nil, err
	}
	breaker, err := NewBreaker(cfg.Breaker, cfg.Clock)
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:       cfg,
		transport: transport,
		health:    health,
		breaker:   breaker,
		digests:   make(map[string]Digest),
	}, nil
}

// SetObserver installs (or, with nil, removes) the resilience-event
// sink. The engine installs its session stats here.
func (c *Client) SetObserver(o Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observer = o
}

// getObserver snapshots the observer.
func (c *Client) getObserver() Observer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observer
}

// record books one exchange outcome into the health tracker, breaker,
// and observer. It returns the failure class of err.
func (c *Client) record(peer string, rtt time.Duration, err error) ErrClass {
	class := Classify(err)
	c.health.Observe(peer, rtt, class)
	obs := c.getObserver()
	if class.Failure() {
		if class == ErrClassTimeout && obs != nil {
			obs.PeerTimeout(peer)
		}
		if c.breaker.OnFailure(peer) && obs != nil {
			obs.BreakerTrip(peer)
		}
	} else if c.breaker.OnSuccess(peer) && obs != nil {
		obs.BreakerRecovery(peer)
	}
	return class
}

// Breaker exposes the client's circuit breaker (for tests and tools).
func (c *Client) Breaker() *Breaker { return c.breaker }

// FetchDigest asks peer for its coverage digest and caches it, so
// subsequent Queries can skip the peer when it cannot possibly help.
// Call it periodically (the digest staleness trade-off is the usual
// one: a stale digest only costs missed hits or wasted queries).
func (c *Client) FetchDigest(peer string) (Digest, time.Duration, error) {
	req, err := Encode(DigestReq{})
	if err != nil {
		return Digest{}, 0, fmt.Errorf("encode digest req: %w", err)
	}
	respB, rtt, err := c.transport.Call(peer, req)
	if err != nil {
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	resp, ok := msg.(DigestResp)
	if !ok {
		err := fmt.Errorf("%w: %v reply to digest req", ErrUnknownKind, msg.MsgKind())
		c.record(peer, rtt, err)
		return Digest{}, rtt, err
	}
	c.record(peer, rtt, nil)
	c.mu.Lock()
	c.digests[peer] = resp.Digest
	c.mu.Unlock()
	return resp.Digest, rtt, nil
}

// DropDigest forgets a cached digest (e.g. after the peer churns).
func (c *Client) DropDigest(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.digests, peer)
}

// SkippedQueries returns how many per-peer queries digests avoided.
func (c *Client) SkippedQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// digestAllows reports whether peer should be queried for vec: true
// when no digest is cached, or when the digest says the peer may cover
// the query.
func (c *Client) digestAllows(peer string, vec feature.Vector) bool {
	c.mu.Lock()
	d, ok := c.digests[peer]
	c.mu.Unlock()
	if !ok {
		return true
	}
	// Slack of one reuse radius absorbs cluster spread.
	if d.MayCover(vec, c.cfg.MaxDistance, c.cfg.MaxDistance) {
		return true
	}
	c.mu.Lock()
	c.skipped++
	c.mu.Unlock()
	return false
}

// SetPeers replaces the peer set.
func (c *Client) SetPeers(peers []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers = append(c.peers[:0:0], peers...)
}

// Peers returns a copy of the current peer set.
func (c *Client) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.peers...)
}

// QueryOutcome is the result of one budgeted peer-set query.
type QueryOutcome struct {
	// Hit is the best in-range answer; meaningful when Found.
	Hit RemoteHit
	// Found reports whether any peer produced an acceptable hit.
	Found bool
	// Cost is the simulated time the query charged to the frame: the
	// slowest queried peer's RTT (peers are asked concurrently on a
	// real radio), capped at the budget.
	Cost time.Duration
	// Queried is how many peers were actually asked.
	Queried int
	// Degraded reports that peers were configured but every one was
	// excluded by its open circuit: the P2P gate was skipped at zero
	// cost and the pipeline ran local-only.
	Degraded bool
}

// Query asks every admitted peer for vec and returns the best in-range
// answer, applying the configured default budget. found is false when
// no peer produced an acceptable hit; cost still reflects the time
// spent asking. See QueryFrame for the full outcome.
func (c *Client) Query(vec feature.Vector) (hit RemoteHit, cost time.Duration, found bool, err error) {
	out, err := c.QueryFrame(vec, c.cfg.QueryBudget)
	return out.Hit, out.Cost, out.Found, err
}

// QueryFrame asks the peer set for vec under a time budget (zero =
// unbounded). Peers whose circuit is open are excluded; peers are
// queried concurrently in the real world, so the charged cost is the
// slowest admitted peer's RTT, capped at the budget. An answer whose
// RTT overruns the budget is discarded and charged to the peer as a
// timeout — the caller keeps the best answer that arrived in time
// (fail partial, not fail total). When every peer is excluded the
// query returns immediately with Degraded set.
func (c *Client) QueryFrame(vec feature.Vector, budget time.Duration) (QueryOutcome, error) {
	peers := c.Peers()
	if len(peers) == 0 {
		return QueryOutcome{}, nil
	}
	admitted := peers[:0:0]
	for _, peer := range peers {
		if c.breaker.Allow(peer) {
			admitted = append(admitted, peer)
		}
	}
	if len(admitted) == 0 {
		c.mu.Lock()
		c.degraded++
		c.mu.Unlock()
		return QueryOutcome{Degraded: true}, nil
	}
	req, err := Encode(Query{Vec: vec, K: uint8(c.cfg.K)})
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("encode query: %w", err)
	}
	var out QueryOutcome
	var maxRTT time.Duration
	for _, peer := range admitted {
		if !c.digestAllows(peer, vec) {
			// The peer's digest says it cannot help. Resolve a
			// half-open probe admission without an exchange.
			c.breaker.OnSuccess(peer)
			continue
		}
		respB, rtt, callErr := c.transport.Call(peer, req)
		if rtt > maxRTT {
			maxRTT = rtt
		}
		if callErr == nil && budget > 0 && rtt > budget {
			// The answer exists but arrived after the frame's peer
			// deadline: discard it and charge the overrun.
			callErr = fmt.Errorf("%w: %v > %v from %s", ErrBudgetExceeded, rtt, budget, peer)
		}
		out.Queried++
		var msg Message
		if callErr == nil {
			var decErr error
			msg, decErr = Decode(respB)
			if decErr != nil {
				callErr = decErr
			}
		}
		if c.record(peer, rtt, callErr); callErr != nil {
			// A lost or failed exchange is a per-peer miss, not a
			// query failure: the requester simply proceeds with the
			// answers it has.
			continue
		}
		resp, ok := msg.(QueryResp)
		if !ok || !resp.Found || resp.Distance > c.cfg.MaxDistance {
			continue
		}
		if !out.Found || resp.Distance < out.Hit.Distance {
			out.Hit = RemoteHit{
				Peer:       peer,
				Label:      resp.Label,
				Confidence: resp.Confidence,
				Distance:   resp.Distance,
				RTT:        rtt,
			}
			out.Found = true
		}
	}
	out.Cost = maxRTT
	if budget > 0 && out.Cost > budget {
		out.Cost = budget
	}
	return out, nil
}

// Gossip shares a fresh recognition result with up to GossipFanout
// admitted peers (all peers when zero). Gossip is fire-and-forget:
// per-peer failures are ignored after GossipAttempts bounded retries,
// peers with open circuits are skipped, and the returned cost is the
// slowest successful delivery (sends proceed concurrently on a real
// radio). Retry pacing happens off the recognition hot path, so no
// backoff is charged to the returned cost.
func (c *Client) Gossip(vec feature.Vector, label string, confidence float64, savedCost time.Duration) (time.Duration, error) {
	peers := c.Peers()
	if len(peers) == 0 {
		return 0, nil
	}
	admitted := peers[:0:0]
	for _, peer := range peers {
		if c.breaker.Allow(peer) {
			admitted = append(admitted, peer)
		}
	}
	if c.cfg.GossipFanout > 0 && len(admitted) > c.cfg.GossipFanout {
		admitted = admitted[:c.cfg.GossipFanout]
	}
	if len(admitted) == 0 {
		return 0, nil
	}
	payload, err := Encode(Gossip{
		Vec:        vec,
		Label:      label,
		Confidence: confidence,
		SavedCost:  savedCost,
	})
	if err != nil {
		return 0, fmt.Errorf("encode gossip: %w", err)
	}
	var maxCost time.Duration
	for _, peer := range admitted {
		for attempt := 0; attempt < c.cfg.GossipAttempts; attempt++ {
			cost, sendErr := c.transport.Send(peer, payload)
			c.record(peer, cost, sendErr)
			if sendErr == nil {
				if cost > maxCost {
					maxCost = cost
				}
				break
			}
			// Only transient loss is worth a retry; a crashed or
			// partitioned peer fails the same way immediately.
			if !errors.Is(sendErr, simnet.ErrLost) {
				break
			}
		}
	}
	return maxCost, nil
}

// Ping probes peer and returns its advertised identity and cache size.
// The outcome feeds the health tracker and breaker, so background
// roster refreshes double as recovery probes for open circuits.
func (c *Client) Ping(self, peer string) (Pong, time.Duration, error) {
	req, err := Encode(Ping{From: self})
	if err != nil {
		return Pong{}, 0, fmt.Errorf("encode ping: %w", err)
	}
	respB, rtt, err := c.transport.Call(peer, req)
	if err != nil {
		c.record(peer, rtt, err)
		return Pong{}, rtt, err
	}
	msg, err := Decode(respB)
	if err != nil {
		c.record(peer, rtt, err)
		return Pong{}, rtt, err
	}
	pong, ok := msg.(Pong)
	if !ok {
		err := fmt.Errorf("%w: %v reply to ping", ErrUnknownKind, msg.MsgKind())
		c.record(peer, rtt, err)
		return Pong{}, rtt, err
	}
	c.record(peer, rtt, nil)
	return pong, rtt, nil
}

// ProbeOpen pings every peer whose circuit is currently open,
// identifying as self. It is the explicit background re-probe hook:
// call it from a maintenance loop to heal circuits without waiting for
// the hot path to trip over them. It returns how many probes
// succeeded (each success closes that peer's circuit).
func (c *Client) ProbeOpen(self string) int {
	recovered := 0
	for _, peer := range c.breaker.Open() {
		if _, _, err := c.Ping(self, peer); err == nil {
			recovered++
		}
	}
	return recovered
}

// HealthSnapshot is a point-in-time view of the client's resilience
// state.
type HealthSnapshot struct {
	// Peers holds per-peer health, sorted by name, with breaker
	// states filled in.
	Peers []PeerHealth
	// Trips and Recoveries count breaker transitions so far.
	Trips, Recoveries int
	// DegradedQueries counts queries skipped because every peer's
	// circuit was open.
	DegradedQueries int
	// Degraded reports whether, right now, peers are configured but
	// every one of them has an open circuit.
	Degraded bool
}

// Health returns a snapshot of per-peer health and breaker state.
func (c *Client) Health() HealthSnapshot {
	var snap HealthSnapshot
	snap.Peers = c.health.Snapshot()
	seen := make(map[string]bool, len(snap.Peers))
	for i := range snap.Peers {
		snap.Peers[i].State = c.breaker.State(snap.Peers[i].Peer)
		seen[snap.Peers[i].Peer] = true
	}
	peers := c.Peers()
	for _, peer := range peers {
		if !seen[peer] {
			snap.Peers = append(snap.Peers, PeerHealth{Peer: peer, State: c.breaker.State(peer)})
		}
	}
	snap.Trips, snap.Recoveries = c.breaker.Counts()
	c.mu.Lock()
	snap.DegradedQueries = c.degraded
	c.mu.Unlock()
	if len(peers) > 0 {
		snap.Degraded = true
		for _, peer := range peers {
			if c.breaker.State(peer) != StateOpen {
				snap.Degraded = false
				break
			}
		}
	}
	return snap
}

// QueryWireSize returns the encoded size of a query for dim-dimensional
// vectors, for energy accounting.
func QueryWireSize(dim int) int { return 2 + 2 + 8*dim }

// GossipWireSize returns the encoded size of a gossip message carrying
// a dim-dimensional vector and a label of labelLen bytes.
func GossipWireSize(dim, labelLen int) int { return 1 + 2 + 8*dim + 2 + labelLen + 8 + 8 }

// SimnetTransport adapts a simnet.Network as a Transport for node self.
type SimnetTransport struct {
	self simnet.NodeID
	net  *simnet.Network
}

var _ Transport = (*SimnetTransport)(nil)

// NewSimnetTransport builds a transport sending as self over net.
func NewSimnetTransport(self string, net *simnet.Network) (*SimnetTransport, error) {
	if self == "" {
		return nil, fmt.Errorf("p2p: empty self id")
	}
	if net == nil {
		return nil, fmt.Errorf("p2p: nil network")
	}
	return &SimnetTransport{self: simnet.NodeID(self), net: net}, nil
}

// Call implements Transport.
func (t *SimnetTransport) Call(peer string, req []byte) ([]byte, time.Duration, error) {
	resp, rtt, err := t.net.Call(t.self, simnet.NodeID(peer), req)
	if err != nil && !errors.Is(err, simnet.ErrLost) {
		return nil, rtt, err
	}
	return resp, rtt, err
}

// Send implements Transport.
func (t *SimnetTransport) Send(peer string, payload []byte) (time.Duration, error) {
	return t.net.Send(t.self, simnet.NodeID(peer), payload)
}

// RegisterService wires svc into net under its own name, so peers can
// reach it.
func RegisterService(net *simnet.Network, svc *Service) error {
	if net == nil {
		return fmt.Errorf("p2p: nil network")
	}
	if svc == nil {
		return fmt.Errorf("p2p: nil service")
	}
	return net.Register(simnet.NodeID(svc.Name()), func(from simnet.NodeID, req []byte) ([]byte, error) {
		return svc.HandleRaw(string(from), req)
	})
}
