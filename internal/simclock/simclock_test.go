package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualNowAndSleep(t *testing.T) {
	start := time.Unix(100, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Sleep(3 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after sleep Now = %v", got)
	}
}

func TestVirtualSleepNegativeIgnored(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Sleep(-time.Hour)
	if !v.Now().Equal(time.Unix(0, 0)) {
		t.Fatal("negative sleep moved time")
	}
	v.Sleep(0)
	if !v.Now().Equal(time.Unix(0, 0)) {
		t.Fatal("zero sleep moved time")
	}
}

func TestVirtualAdvanceAlias(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Advance(time.Minute)
	if v.Now().Sub(time.Unix(0, 0)) != time.Minute {
		t.Fatal("Advance did not move time")
	}
}

func TestVirtualSetOnlyForward(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	v.Set(time.Unix(50, 0))
	if !v.Now().Equal(time.Unix(100, 0)) {
		t.Fatal("Set moved time backwards")
	}
	v.Set(time.Unix(200, 0))
	if !v.Now().Equal(time.Unix(200, 0)) {
		t.Fatal("Set did not move time forwards")
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Sleep(time.Millisecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(time.Unix(0, 0)); got != 8*time.Second {
		t.Fatalf("concurrent sleeps lost time: %v", got)
	}
}

// Property: any sequence of non-negative sleeps sums exactly.
func TestVirtualSleepSumsProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		v := NewVirtual(time.Unix(0, 0))
		var want time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Microsecond
			v.Sleep(d)
			want += d
		}
		return v.Now().Sub(time.Unix(0, 0)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClock(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now %v outside [%v, %v]", got, before, after)
	}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Real.Sleep returned early")
	}
	c.Sleep(-time.Second) // must not block
}
