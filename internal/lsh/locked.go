package lsh

import (
	"sync"

	"approxcache/internal/feature"
)

// Locked wraps a HyperplaneIndex behind a single RWMutex, reproducing
// the pre-lock-free read path: every lookup takes a read lock, every
// mutation a write lock. It exists as the measured baseline for the
// read-scalability experiment (E24) and as the reference
// implementation for the lock-free differential tests — under the
// mutex the wrapped index runs single-threaded, so its results define
// what the lock-free path must reproduce bit for bit.
//
// The wrapper serializes at its own lock word; the inner index's
// publication machinery still runs but is never contended, so the
// wrapper measures exactly the cost the tentpole removed: shared
// lock-word cache-line traffic on the read path.
type Locked struct {
	mu    sync.RWMutex
	inner *HyperplaneIndex
}

var _ IntoIndex = (*Locked)(nil)

// NewLocked wraps idx behind a single RWMutex.
func NewLocked(idx *HyperplaneIndex) *Locked {
	return &Locked{inner: idx}
}

// Unwrap returns the wrapped index (tests compare internals).
func (l *Locked) Unwrap() *HyperplaneIndex { return l.inner }

// Insert adds (id, v) under the write lock.
func (l *Locked) Insert(id ID, v feature.Vector) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Insert(id, v)
}

// Remove deletes id under the write lock.
func (l *Locked) Remove(id ID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.Remove(id)
}

// Nearest returns up to k neighbors under the read lock.
func (l *Locked) Nearest(q feature.Vector, k int) ([]Neighbor, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Nearest(q, k)
}

// NearestInto is Nearest writing into dst, under the read lock.
func (l *Locked) NearestInto(q feature.Vector, k int, dst []Neighbor) ([]Neighbor, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.NearestInto(q, k, dst)
}

// Candidates returns q's candidate set under the read lock.
func (l *Locked) Candidates(q feature.Vector) ([]ID, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Candidates(q)
}

// CandidatesInto is Candidates appending into dst, under the read lock.
func (l *Locked) CandidatesInto(q feature.Vector, dst []ID) ([]ID, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.CandidatesInto(q, dst)
}

// Len returns the number of indexed vectors under the read lock.
func (l *Locked) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Len()
}

// Stats returns occupancy statistics under the read lock.
func (l *Locked) Stats() Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.inner.Stats()
}
