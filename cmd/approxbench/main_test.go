package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run([]string{"-format", "xml", "-exp", "E3", "-frames", "60"}); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRunBadFrames(t *testing.T) {
	if err := run([]string{"-exp", "E3", "-frames", "0"}); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestRunSingleExperimentTable(t *testing.T) {
	if err := run([]string{"-exp", "E3", "-frames", "80"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentCSV(t *testing.T) {
	if err := run([]string{"-exp", "E13", "-frames", "80", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunByName(t *testing.T) {
	if err := run([]string{"-exp", "battery", "-frames", "80"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunThroughputTiny(t *testing.T) {
	path := t.TempDir() + "/tp.json"
	if err := run([]string{
		"-throughput", "-streams", "4", "-tp-frames", "4",
		"-throughput-json", path,
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"single-mutex"`, `"pool-sharded-batched"`, `"speedup"`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("report missing %s:\n%s", want, blob)
		}
	}
}
