package approxcache

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"approxcache/internal/cachestore"
)

// ErrCorruptSnapshot is returned by LoadSnapshot when the snapshot file
// cannot be decoded or fails validation (truncated write, partial
// download, bit rot). The cache is left untouched — a damaged
// warm-start file just means a cold start.
var ErrCorruptSnapshot = cachestore.ErrCorruptSnapshot

// SaveSnapshot writes the cache's live entries to w as JSON, so a later
// session (or another device) can warm-start from them. The cache must
// be in ModeApprox.
func (c *Cache) SaveSnapshot(w io.Writer) error {
	if c.store == nil {
		return fmt.Errorf("approxcache: snapshots require ModeApprox")
	}
	return c.store.Export(w)
}

// LoadSnapshot reads a snapshot from r into the cache, subject to its
// capacity and eviction policy, and returns how many entries were
// inserted. The cache must be in ModeApprox.
//
// The snapshot is validated in full before anything is inserted: a
// corrupt or truncated file returns ErrCorruptSnapshot and leaves the
// cache exactly as it was.
func (c *Cache) LoadSnapshot(r io.Reader) (int, error) {
	if c.store == nil {
		return 0, fmt.Errorf("approxcache: snapshots require ModeApprox")
	}
	return c.store.Import(r)
}

// SaveSnapshotFile atomically writes a snapshot to path: the bytes go
// to a temporary file in the same directory, are synced to disk, and
// only then renamed over path. A crash or power loss at any point
// leaves either the old complete snapshot or the new complete snapshot
// — never a torn file. Stray temporaries from interrupted saves are
// ignored by loads and overwritten by the next save's unique name.
func (c *Cache) SaveSnapshotFile(path string) (err error) {
	if c.store == nil {
		return fmt.Errorf("approxcache: snapshots require ModeApprox")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("approxcache: save snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = c.store.Export(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("approxcache: save snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("approxcache: save snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("approxcache: save snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile reads a snapshot file written by SaveSnapshotFile
// (or any SaveSnapshot output) into the cache and returns how many
// entries were inserted. A missing file is not an error — it returns
// (0, nil), the cold-start case — while a corrupt one returns
// ErrCorruptSnapshot and leaves the cache untouched.
func (c *Cache) LoadSnapshotFile(path string) (int, error) {
	if c.store == nil {
		return 0, fmt.Errorf("approxcache: snapshots require ModeApprox")
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("approxcache: load snapshot: %w", err)
	}
	defer f.Close()
	return c.store.Import(f)
}
