package feature

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatalf("clone aliases original: v=%v", v)
	}
	if c.Dim() != 3 {
		t.Fatalf("clone dim = %d, want 3", c.Dim())
	}
}

func TestNorm(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"zero", Vector{0, 0}, 0},
		{"unit axis", Vector{1, 0, 0}, 1},
		{"3-4-5", Vector{3, 4}, 5},
		{"empty", Vector{}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Norm(); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Norm() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEqual(v.Norm(), 1, 1e-12) {
		t.Fatalf("normalized norm = %v, want 1", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize()
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero vector changed by Normalize: %v", z)
	}
}

func TestNormalizedDoesNotMutate(t *testing.T) {
	v := Vector{3, 4}
	u := v.Normalized()
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("Normalized mutated receiver: %v", v)
	}
	if !almostEqual(u.Norm(), 1, 1e-12) {
		t.Fatalf("Normalized norm = %v, want 1", u.Norm())
	}
}

func TestDotErrors(t *testing.T) {
	_, err := Dot(Vector{1}, Vector{1, 2})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Dot mismatch err = %v, want ErrDimensionMismatch", err)
	}
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean(Vector{0, 0}, Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 5, 1e-12) {
		t.Fatalf("Euclidean = %v, want 5", d)
	}
	if _, err := Euclidean(Vector{1}, Vector{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("want ErrDimensionMismatch, got %v", err)
	}
}

func TestMustEuclideanMismatchIsInf(t *testing.T) {
	if d := MustEuclidean(Vector{1}, Vector{1, 2}); !math.IsInf(d, 1) {
		t.Fatalf("MustEuclidean mismatch = %v, want +Inf", d)
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{"identical", Vector{1, 2}, Vector{1, 2}, 0},
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 1},
		{"opposite", Vector{1, 0}, Vector{-1, 0}, 2},
		{"zero vs any", Vector{0, 0}, Vector{1, 1}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Cosine(tt.a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Cosine = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMetricString(t *testing.T) {
	if MetricEuclidean.String() != "euclidean" || MetricCosine.String() != "cosine" {
		t.Fatal("metric names wrong")
	}
	if Metric(99).String() != "Metric(99)" {
		t.Fatalf("unknown metric string = %q", Metric(99).String())
	}
}

func TestMetricDistanceUnknown(t *testing.T) {
	if _, err := Metric(99).Distance(Vector{1}, Vector{1}); err == nil {
		t.Fatal("unknown metric should error")
	}
}

func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// Property: Euclidean distance is symmetric, non-negative, zero on
// identity, and obeys the triangle inequality.
func TestEuclideanMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(16)
		a, b, c := randVec(r, n), randVec(r, n), randVec(r, n)
		ab := MustEuclidean(a, b)
		ba := MustEuclidean(b, a)
		ac := MustEuclidean(a, c)
		cb := MustEuclidean(c, b)
		if !almostEqual(ab, ba, 1e-9) {
			return false
		}
		if ab < 0 {
			return false
		}
		if MustEuclidean(a, a) != 0 {
			return false
		}
		return ab <= ac+cb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: normalizing any non-zero vector yields unit norm, and cosine
// distance always lies in [0, 2].
func TestNormalizeAndCosineRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(16)
		a, b := randVec(rr, n), randVec(rr, n)
		if a.Norm() > 0 {
			u := a.Normalized()
			if !almostEqual(u.Norm(), 1, 1e-9) {
				return false
			}
		}
		d, err := Cosine(a, b)
		if err != nil {
			return false
		}
		return d >= -1e-12 && d <= 2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
