package eval

import (
	"testing"
	"time"

	"approxcache/internal/p2p"
)

// TestChaosResilienceAcceptance is the robustness acceptance test: with
// every peer crashed mid-session, the guarded pipeline's mean frame
// latency must stay within 10% of the no-peers baseline, and after the
// scheduled heal the circuits must close and peer hits must resume,
// with the breaker activity visible in the session stats.
func TestChaosResilienceAcceptance(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 42, Frames: 400})
	if err != nil {
		t.Fatal(err)
	}
	for p, name := range []string{"pre", "crash", "heal"} {
		if res.Baseline[p].Frames == 0 || res.Run[p].Frames == 0 {
			t.Fatalf("empty %s phase: baseline %d frames, run %d frames",
				name, res.Baseline[p].Frames, res.Run[p].Frames)
		}
	}

	// Peers must actually matter before the crash, or the test proves
	// nothing.
	if res.Run[PhasePre].PeerHits == 0 {
		t.Fatal("no peer hits before the crash")
	}

	// Degradation bound: crash-window latency within 10% of no-peers.
	limit := res.Baseline[PhaseCrash].Mean + res.Baseline[PhaseCrash].Mean/10
	if res.Run[PhaseCrash].Mean > limit {
		t.Fatalf("crash-window mean %v exceeds baseline %v + 10%%",
			res.Run[PhaseCrash].Mean, res.Baseline[PhaseCrash].Mean)
	}

	// Breaker activity must be visible in session stats.
	trips, recoveries := res.Stats.BreakerEvents()
	if trips == 0 {
		t.Fatal("no breaker trips recorded in session stats")
	}
	if recoveries == 0 {
		t.Fatal("no breaker recoveries recorded in session stats")
	}
	if res.Stats.DegradedFrames() == 0 {
		t.Fatal("no degraded frames recorded during the crash window")
	}

	// After the heal the circuits close and peer reuse resumes.
	if res.Run[PhaseHeal].PeerHits == 0 {
		t.Fatal("peer hits did not resume after the heal")
	}
	for _, ph := range res.Health.Peers {
		if ph.State != p2p.StateClosed {
			t.Fatalf("peer %s circuit %v at end of run, want closed", ph.Peer, ph.State)
		}
	}
	if res.Health.Degraded {
		t.Fatal("client still degraded after the heal")
	}
}

// TestChaosUnguardedPaysDeadCost pins down what the resilience layer
// buys: with the breaker disabled and no frame budget, the same crash
// window keeps paying the dead-peer radio timeout on every P2P-gate
// frame and blows well past the baseline-plus-10% bound the guarded
// run meets.
func TestChaosUnguardedPaysDeadCost(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 42, Breaker: p2p.BreakerConfig{Disabled: true}, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run[PhaseCrash].Frames == 0 {
		t.Fatal("empty crash phase")
	}
	limit := res.Baseline[PhaseCrash].Mean + res.Baseline[PhaseCrash].Mean/10
	if res.Run[PhaseCrash].Mean <= limit {
		t.Fatalf("unguarded crash-window mean %v unexpectedly within baseline %v + 10%%",
			res.Run[PhaseCrash].Mean, res.Baseline[PhaseCrash].Mean)
	}
	if trips, _ := res.Stats.BreakerEvents(); trips != 0 {
		t.Fatalf("disabled breaker recorded %d trips", trips)
	}
}

// TestChaosPhasesSumToWorkload sanity-checks the windowing.
func TestChaosPhasesSumToWorkload(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 7, Frames: 60, DeadCost: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, phases := range [][3]ChaosPhase{res.Baseline, res.Run} {
		total := 0
		for _, p := range phases {
			total += p.Frames
		}
		if total != 60 {
			t.Fatalf("phases cover %d frames, want 60", total)
		}
	}
}
