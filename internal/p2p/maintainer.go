package p2p

import (
	"fmt"
	"sync"
	"time"
)

// MaintainerConfig tunes the background roster maintenance loop.
type MaintainerConfig struct {
	// Interval is how often the roster is refreshed and the client's
	// peer set re-ranked.
	Interval time.Duration
	// Fanout is how many best peers to keep on the client (0 = all
	// alive peers).
	Fanout int
	// RefreshDigests also fetches each selected peer's coverage
	// digest every round, enabling the client's query prefilter.
	RefreshDigests bool
}

// Validate reports whether the configuration is usable.
func (c MaintainerConfig) Validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("p2p: maintainer interval must be positive, got %v", c.Interval)
	}
	if c.Fanout < 0 {
		return fmt.Errorf("p2p: maintainer fanout must be non-negative, got %d", c.Fanout)
	}
	return nil
}

// DefaultMaintainerConfig refreshes every 30 s keeping the 4 best
// peers — device-to-device neighborhoods churn on a human timescale.
func DefaultMaintainerConfig() MaintainerConfig {
	return MaintainerConfig{Interval: 30 * time.Second, Fanout: 4}
}

// Maintainer periodically refreshes a Roster and points its client at
// the best peers, so a long-running node tracks neighborhood churn
// without the pipeline doing any discovery work. Construct with
// StartMaintainer; stop with Shutdown.
type Maintainer struct {
	cfg    MaintainerConfig
	roster *Roster

	mu       sync.Mutex
	refreshs int

	stop chan struct{}
	done chan struct{}
}

// StartMaintainer launches the maintenance goroutine. It performs one
// synchronous refresh before returning, so the client starts with a
// ranked peer set.
func StartMaintainer(cfg MaintainerConfig, roster *Roster) (*Maintainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if roster == nil {
		return nil, fmt.Errorf("p2p: nil roster")
	}
	m := &Maintainer{
		cfg:    cfg,
		roster: roster,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	m.refresh()
	go m.loop()
	return m, nil
}

// Refreshes returns how many maintenance rounds have run.
func (m *Maintainer) Refreshes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refreshs
}

// Shutdown stops the maintenance goroutine and waits for it to exit.
// Shutdown is idempotent.
func (m *Maintainer) Shutdown() {
	m.mu.Lock()
	select {
	case <-m.stop:
		m.mu.Unlock()
		<-m.done
		return
	default:
		close(m.stop)
	}
	m.mu.Unlock()
	<-m.done
}

func (m *Maintainer) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.refresh()
		case <-m.stop:
			return
		}
	}
}

func (m *Maintainer) refresh() {
	best := m.roster.ApplyBest(m.cfg.Fanout)
	// Queued gossip must not outlive a maintenance round even on an
	// idle pipeline; this is the batching backstop.
	_, _ = m.roster.client.FlushGossip()
	if m.cfg.RefreshDigests {
		for _, peer := range best {
			// A failed digest fetch leaves any previous digest in
			// place; the prefilter degrades gracefully either way.
			_, _, _ = m.roster.client.FetchDigest(peer)
		}
	}
	m.mu.Lock()
	m.refreshs++
	m.mu.Unlock()
}
