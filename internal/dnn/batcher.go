package dnn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"approxcache/internal/metrics"
	"approxcache/internal/vision"
)

// BatcherConfig tunes the micro-batching scheduler.
type BatcherConfig struct {
	// MaxBatch is the largest batch dispatched in one invocation. A
	// batch dispatches immediately when it fills.
	MaxBatch int
	// MaxWait bounds how long the first frame of a batch waits for
	// company before the batch dispatches anyway (wall-clock: batching
	// trades a bounded real delay for amortized model cost).
	MaxWait time.Duration
}

// DefaultBatcherConfig returns the production batching policy: up to 8
// frames or 5 ms, whichever comes first.
func DefaultBatcherConfig() BatcherConfig {
	return BatcherConfig{MaxBatch: 8, MaxWait: 5 * time.Millisecond}
}

// Validate reports whether the configuration is usable.
func (c BatcherConfig) Validate() error {
	if c.MaxBatch <= 0 {
		return fmt.Errorf("dnn: MaxBatch must be positive, got %d", c.MaxBatch)
	}
	if c.MaxWait <= 0 {
		return fmt.Errorf("dnn: MaxWait must be positive, got %v", c.MaxWait)
	}
	return nil
}

// batchCall is one caller's slot in a pending batch.
type batchCall struct {
	im   *vision.Image
	done chan struct{}
	inf  Inference
	err  error
}

// Batcher coalesces concurrent Infer calls into bounded batches
// against a BatchClassifier. A batch dispatches when it reaches
// MaxBatch frames (full flush) or when its oldest frame has waited
// MaxWait (deadline flush). Single callers therefore pay at most
// MaxWait extra latency; saturated callers get near-BatchLatency
// amortization. Batcher implements the engine-facing classifier
// interface (Infer + Profile), so it drops in front of the watchdog
// unchanged.
//
// Dispatch runs on the caller's goroutine for full flushes and on the
// timer goroutine for deadline flushes; the pending queue is swapped
// out under the mutex either way, so a batch is dispatched exactly
// once. After Close, Infer degrades to unbatched single-frame calls.
type Batcher struct {
	cfg   BatcherConfig
	inner BatchClassifier

	mu      sync.Mutex
	pending []*batchCall
	gen     uint64 // incremented per flush; lets a stale timer no-op
	timer   *time.Timer
	closed  bool

	batches         atomic.Int64
	frames          atomic.Int64
	sizeSum         atomic.Int64
	fullFlushes     atomic.Int64
	deadlineFlushes atomic.Int64
}

// NewBatcher builds a micro-batching front for inner.
func NewBatcher(cfg BatcherConfig, inner BatchClassifier) (*Batcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("dnn: nil batch classifier")
	}
	return &Batcher{cfg: cfg, inner: inner}, nil
}

// Profile returns the wrapped model's profile.
func (b *Batcher) Profile() Profile { return b.inner.Profile() }

// Infer submits im and blocks until its batch completes.
func (b *Batcher) Infer(im *vision.Image) (Inference, error) {
	call := &batchCall{im: im, done: make(chan struct{})}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.inner.Infer(im)
	}
	b.pending = append(b.pending, call)
	if len(b.pending) >= b.cfg.MaxBatch {
		batch := b.takeLocked()
		b.fullFlushes.Add(1)
		b.mu.Unlock()
		b.dispatch(batch)
		<-call.done
		return call.inf, call.err
	}
	if len(b.pending) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.cfg.MaxWait, func() { b.deadline(gen) })
	}
	b.mu.Unlock()

	<-call.done
	return call.inf, call.err
}

// takeLocked swaps out the pending queue and advances the generation
// so any armed deadline timer for it becomes a no-op.
func (b *Batcher) takeLocked() []*batchCall {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadline fires when a batch's oldest frame has waited MaxWait.
func (b *Batcher) deadline(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return // the batch it was armed for already flushed full
	}
	batch := b.takeLocked()
	b.deadlineFlushes.Add(1)
	b.mu.Unlock()
	b.dispatch(batch)
}

// dispatch runs one batch through the model and completes its calls.
func (b *Batcher) dispatch(batch []*batchCall) {
	if len(batch) == 0 {
		return
	}
	b.batches.Add(1)
	b.frames.Add(int64(len(batch)))
	b.sizeSum.Add(int64(len(batch)))
	ims := make([]*vision.Image, len(batch))
	for i, c := range batch {
		ims[i] = c.im
	}
	infs, err := b.inner.InferBatch(ims)
	for i, c := range batch {
		if err != nil {
			c.err = err
		} else {
			c.inf = infs[i]
		}
		close(c.done)
	}
}

// Close flushes any pending batch and stops accepting batched work.
// Subsequent Infer calls pass through unbatched, so Close is safe
// while traffic is still arriving.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch)
}

// Stats returns a snapshot of the batcher's dispatch counters.
func (b *Batcher) Stats() metrics.BatcherStats {
	return metrics.BatcherStats{
		Batches:         b.batches.Load(),
		Frames:          b.frames.Load(),
		SizeSum:         b.sizeSum.Load(),
		FullFlushes:     b.fullFlushes.Load(),
		DeadlineFlushes: b.deadlineFlushes.Load(),
	}
}
