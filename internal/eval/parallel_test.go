package eval

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestParallelEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 37
			var hits [n]atomic.Int32
			if err := parallelEach(n, workers, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestParallelEachFirstErrorByIndexWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := parallelEach(10, 4, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errA)
	}
}

func TestParallelEachZeroItems(t *testing.T) {
	if err := parallelEach(0, 4, func(int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleWorkers(t *testing.T) {
	if got := (Scale{}).workers(); got != 1 {
		t.Fatalf("zero value workers = %d, want 1", got)
	}
	if got := (Scale{Workers: 6}).workers(); got != 6 {
		t.Fatalf("explicit workers = %d, want 6", got)
	}
	if got := (Scale{Workers: -1}).workers(); got < 1 {
		t.Fatalf("NumCPU workers = %d, want >= 1", got)
	}
}

// TestRunExperimentsParallelMatchesSerial is the determinism guarantee
// behind `approxbench -parallel`: every experiment owns its virtual
// clock and RNGs, so worker count must not change a single table cell.
func TestRunExperimentsParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	var exps []Experiment
	for _, id := range []string{"E1", "E2", "E3", "E5"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	serial := Scale{Frames: 120, Seed: 7, Workers: 1}
	parallel := Scale{Frames: 120, Seed: 7, Workers: 4}
	want, err := RunExperiments(exps, serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunExperiments(exps, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("report %s differs between serial and parallel runs:\nserial:   %v\nparallel: %v",
				want[i].ID, want[i], got[i])
		}
	}
}
