package feature

import (
	"math/rand"
	"testing"

	"approxcache/internal/vision"
)

func testClassSet(t *testing.T) *vision.ClassSet {
	t.Helper()
	cs, err := vision.NewClassSet(4, 64, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestGridExtractorValidation(t *testing.T) {
	if _, err := NewGridExtractor(0, 8); err == nil {
		t.Fatal("zero cols should error")
	}
	if _, err := NewGridExtractor(8, -1); err == nil {
		t.Fatal("negative rows should error")
	}
	g, err := NewGridExtractor(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 64 {
		t.Fatalf("Dim = %d, want 64", g.Dim())
	}
	if g.Name() != "grid8x8" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestGridExtractorTooSmallImage(t *testing.T) {
	g := GridExtractor{Cols: 8, Rows: 8}
	if _, err := g.Extract(vision.NewImage(4, 4)); err == nil {
		t.Fatal("image smaller than grid should error")
	}
}

func TestGridExtractorUniformImage(t *testing.T) {
	im := vision.NewImage(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 0.5
	}
	g := GridExtractor{Cols: 4, Rows: 4}
	v, err := g.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 16 {
		t.Fatalf("len = %d, want 16", len(v))
	}
	for i, x := range v {
		if !almostEqual(x, 0.5, 1e-12) {
			t.Fatalf("cell %d = %v, want 0.5", i, x)
		}
	}
}

func TestGridExtractorNonDivisibleSize(t *testing.T) {
	// 10x10 image with 3x3 grid: cells have uneven sizes but must
	// cover the image exactly once.
	im := vision.NewImage(10, 10)
	for i := range im.Pix {
		im.Pix[i] = 1
	}
	g := GridExtractor{Cols: 3, Rows: 3}
	v, err := g.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if !almostEqual(x, 1, 1e-12) {
			t.Fatalf("cell %d = %v, want 1", i, x)
		}
	}
}

func TestHistogramExtractor(t *testing.T) {
	if _, err := NewHistogramExtractor(0); err == nil {
		t.Fatal("zero bins should error")
	}
	h, err := NewHistogramExtractor(4)
	if err != nil {
		t.Fatal(err)
	}
	im := vision.NewImage(2, 2)
	im.Pix = []float64{0.1, 0.3, 0.6, 1.0} // bins 0,1,2,3 (1.0 clamps to last)
	v, err := h.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{0.25, 0.25, 0.25, 0.25}
	for i := range want {
		if !almostEqual(v[i], want[i], 1e-12) {
			t.Fatalf("hist = %v, want %v", v, want)
		}
	}
}

func TestHistogramExtractorEmptyImage(t *testing.T) {
	h := HistogramExtractor{Bins: 4}
	if _, err := h.Extract(&vision.Image{}); err == nil {
		t.Fatal("empty image should error")
	}
}

func TestHistogramSumsToOne(t *testing.T) {
	cs := testClassSet(t)
	rng := rand.New(rand.NewSource(2))
	im, err := cs.Render(0, vision.DefaultPerturbation(), rng)
	if err != nil {
		t.Fatal(err)
	}
	h := HistogramExtractor{Bins: 16}
	v, err := h.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("histogram sum = %v, want 1", sum)
	}
}

func TestCombinedExtractor(t *testing.T) {
	if _, err := NewCombinedExtractor(true); err == nil {
		t.Fatal("no parts should error")
	}
	c, err := NewCombinedExtractor(true, GridExtractor{Cols: 4, Rows: 4}, HistogramExtractor{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 24 {
		t.Fatalf("Dim = %d, want 24", c.Dim())
	}
	cs := testClassSet(t)
	rng := rand.New(rand.NewSource(3))
	im, err := cs.Render(1, vision.DefaultPerturbation(), rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 24 {
		t.Fatalf("len = %d, want 24", len(v))
	}
	if !almostEqual(v.Norm(), 1, 1e-9) {
		t.Fatalf("combined vector norm = %v, want 1", v.Norm())
	}
}

func TestCombinedExtractorPropagatesPartError(t *testing.T) {
	c, err := NewCombinedExtractor(false, GridExtractor{Cols: 8, Rows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extract(vision.NewImage(2, 2)); err == nil {
		t.Fatal("part error should propagate")
	}
}

// Feature space sanity: same-class renders must be closer than
// different-class renders on average. This is the property the whole
// approximate cache depends on.
func TestFeatureSpaceSeparatesClasses(t *testing.T) {
	cs := testClassSet(t)
	ex := DefaultExtractor()
	rng := rand.New(rand.NewSource(4))
	const perClass = 8
	vecs := make(map[int][]Vector)
	for c := 0; c < cs.NumClasses(); c++ {
		for i := 0; i < perClass; i++ {
			im, err := cs.Render(c, vision.DefaultPerturbation(), rng)
			if err != nil {
				t.Fatal(err)
			}
			v, err := ex.Extract(im)
			if err != nil {
				t.Fatal(err)
			}
			vecs[c] = append(vecs[c], v)
		}
	}
	var intra, inter float64
	var intraN, interN int
	for c1, vs1 := range vecs {
		for c2, vs2 := range vecs {
			for i := range vs1 {
				for j := range vs2 {
					if c1 == c2 && i >= j {
						continue
					}
					d := MustEuclidean(vs1[i], vs2[j])
					if c1 == c2 {
						intra += d
						intraN++
					} else {
						inter += d
						interN++
					}
				}
			}
		}
	}
	intra /= float64(intraN)
	inter /= float64(interN)
	if intra*2 > inter {
		t.Fatalf("weak class separation: intra=%v inter=%v", intra, inter)
	}
}

func TestDefaultExtractorDeterministic(t *testing.T) {
	cs := testClassSet(t)
	ex := DefaultExtractor()
	im, err := cs.Prototype(2)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ex.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ex.Extract(im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("extraction not deterministic at dim %d", i)
		}
	}
}
