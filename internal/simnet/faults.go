// Fault injection: imperative per-node/per-link fault toggles on a
// Network, plus a declarative FaultPlan that a clock-driven scheduler
// replays during an experiment. Chaos tests use it to crash, partition,
// degrade, and heal peers at scripted virtual-time offsets and assert
// the pipeline degrades gracefully.
package simnet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"approxcache/internal/simclock"
)

// maxInjectedLoss caps stacked loss probability so a link stays a
// valid (sub-certain) Bernoulli drop, even under extreme injection.
const maxInjectedLoss = 0.999

// Crash takes node id down: calls and sends to it fail with ErrCrashed
// (after the configured dead cost), as if the process died. The
// handler registration is retained so Restart brings it back.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart brings a crashed node back up.
func (n *Network) Restart(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether id is currently crashed.
func (n *Network) Crashed(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// SetNodeFault degrades every link touching id by extraLatency and
// extraLoss (stacked on the link profile, loss capped below 1).
// Zero/zero clears the fault.
func (n *Network) SetNodeFault(id NodeID, extraLatency time.Duration, extraLoss float64) error {
	if extraLatency < 0 || extraLoss < 0 {
		return fmt.Errorf("simnet: negative fault magnitudes (%v, %v)", extraLatency, extraLoss)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if extraLatency == 0 && extraLoss == 0 {
		delete(n.nodeFault, id)
		return nil
	}
	n.nodeFault[id] = faultOverlay{extraLatency: extraLatency, extraLoss: extraLoss}
	return nil
}

// SetLinkFault degrades the directed link a→b by extraLatency and
// extraLoss. Zero/zero clears the fault.
func (n *Network) SetLinkFault(a, b NodeID, extraLatency time.Duration, extraLoss float64) error {
	if extraLatency < 0 || extraLoss < 0 {
		return fmt.Errorf("simnet: negative fault magnitudes (%v, %v)", extraLatency, extraLoss)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if extraLatency == 0 && extraLoss == 0 {
		delete(n.linkFault, [2]NodeID{a, b})
		return nil
	}
	n.linkFault[[2]NodeID{a, b}] = faultOverlay{extraLatency: extraLatency, extraLoss: extraLoss}
	return nil
}

// SetCorrupt makes (or stops making) node id's responses arrive
// bit-flipped, so callers exercise their hostile-input handling.
func (n *Network) SetCorrupt(id NodeID, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if on {
		n.corrupt[id] = true
	} else {
		delete(n.corrupt, id)
	}
}

// corruptPayload returns a deterministically bit-flipped copy of p (the
// original is not aliased, as handlers may retain their buffers).
func corruptPayload(p []byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = b ^ 0x5a
	}
	return out
}

// FaultKind identifies one scheduled fault action.
type FaultKind int

// Supported fault kinds.
const (
	// FaultCrash takes Node down (ErrCrashed on every exchange).
	FaultCrash FaultKind = iota + 1
	// FaultRestart brings Node back up.
	FaultRestart
	// FaultPartition cuts both directions between A and B.
	FaultPartition
	// FaultHeal restores both directions between A and B.
	FaultHeal
	// FaultLatencySpike adds ExtraLatency/ExtraLoss to every link
	// touching Node (per-node degradation).
	FaultLatencySpike
	// FaultLossBurst is FaultLatencySpike spelled for loss-dominant
	// injection; both kinds apply both magnitudes.
	FaultLossBurst
	// FaultCorrupt makes Node's responses arrive bit-flipped.
	FaultCorrupt
	// FaultClear clears Node's latency/loss/corruption faults (crash
	// and partitions are cleared by FaultRestart/FaultHeal).
	FaultClear
)

// String returns the kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultLatencySpike:
		return "latency-spike"
	case FaultLossBurst:
		return "loss-burst"
	case FaultCorrupt:
		return "corrupt"
	case FaultClear:
		return "clear"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	// At is the event's offset from the scheduler's start.
	At time.Duration
	// Kind selects the action.
	Kind FaultKind
	// Node targets node-scoped kinds (crash, restart, latency spike,
	// loss burst, corrupt, clear).
	Node NodeID
	// A, B target link-scoped kinds (partition, heal).
	A, B NodeID
	// ExtraLatency and ExtraLoss are the spike/burst magnitudes.
	ExtraLatency time.Duration
	// ExtraLoss is added to the link loss probability (capped below 1).
	ExtraLoss float64
}

// Validate reports whether the event is well-formed.
func (e FaultEvent) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("simnet: fault at negative offset %v", e.At)
	}
	switch e.Kind {
	case FaultCrash, FaultRestart, FaultCorrupt, FaultClear:
		if e.Node == "" {
			return fmt.Errorf("simnet: %v fault needs Node", e.Kind)
		}
	case FaultLatencySpike, FaultLossBurst:
		if e.Node == "" {
			return fmt.Errorf("simnet: %v fault needs Node", e.Kind)
		}
		if e.ExtraLatency < 0 || e.ExtraLoss < 0 {
			return fmt.Errorf("simnet: %v fault needs non-negative magnitudes", e.Kind)
		}
	case FaultPartition, FaultHeal:
		if e.A == "" || e.B == "" {
			return fmt.Errorf("simnet: %v fault needs A and B", e.Kind)
		}
	default:
		return fmt.Errorf("simnet: unknown fault kind %d", int(e.Kind))
	}
	return nil
}

// FaultPlan is a schedule of fault events, applied in At order.
type FaultPlan []FaultEvent

// Validate reports whether every event is well-formed.
func (p FaultPlan) Validate() error {
	for i, e := range p {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// FaultScheduler replays a FaultPlan against a network on an injected
// clock. It is deterministic and goroutine-free: callers Tick it at
// convenient points (e.g. between frames) and every event whose offset
// has elapsed is applied, in order. FaultScheduler is safe for
// concurrent use.
type FaultScheduler struct {
	net   *Network
	clock simclock.Clock

	muSched sync.Mutex
	start   time.Time
	plan    FaultPlan
	next    int
}

// NewFaultScheduler builds a scheduler over net starting at clock.Now().
// The plan is copied and sorted by offset (stable, so same-offset
// events keep their declared order).
func NewFaultScheduler(net *Network, clock simclock.Clock, plan FaultPlan) (*FaultScheduler, error) {
	if net == nil {
		return nil, fmt.Errorf("simnet: nil network")
	}
	if clock == nil {
		return nil, fmt.Errorf("simnet: nil clock")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	sorted := append(FaultPlan(nil), plan...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &FaultScheduler{net: net, clock: clock, start: clock.Now(), plan: sorted}, nil
}

// Tick applies every not-yet-applied event whose offset has elapsed and
// returns how many were applied.
func (s *FaultScheduler) Tick() int {
	elapsed := s.clock.Now().Sub(s.start)
	s.muSched.Lock()
	defer s.muSched.Unlock()
	applied := 0
	for s.next < len(s.plan) && s.plan[s.next].At <= elapsed {
		s.apply(s.plan[s.next])
		s.next++
		applied++
	}
	return applied
}

// Done reports whether every event has been applied.
func (s *FaultScheduler) Done() bool {
	s.muSched.Lock()
	defer s.muSched.Unlock()
	return s.next >= len(s.plan)
}

// apply executes one (already validated) event.
func (s *FaultScheduler) apply(e FaultEvent) {
	switch e.Kind {
	case FaultCrash:
		s.net.Crash(e.Node)
	case FaultRestart:
		s.net.Restart(e.Node)
	case FaultPartition:
		s.net.Partition(e.A, e.B)
	case FaultHeal:
		s.net.Heal(e.A, e.B)
	case FaultLatencySpike, FaultLossBurst:
		_ = s.net.SetNodeFault(e.Node, e.ExtraLatency, e.ExtraLoss)
	case FaultCorrupt:
		s.net.SetCorrupt(e.Node, true)
	case FaultClear:
		_ = s.net.SetNodeFault(e.Node, 0, 0)
		s.net.SetCorrupt(e.Node, false)
	}
}
