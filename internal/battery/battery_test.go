package battery

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestProfileValidate(t *testing.T) {
	if err := TypicalPhone().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{CapacityMAh: 1, VoltageV: 1, RecognitionShare: 1},
		{Name: "x", VoltageV: 1, RecognitionShare: 1},
		{Name: "x", CapacityMAh: 1, RecognitionShare: 1},
		{Name: "x", CapacityMAh: 1, VoltageV: 1},
		{Name: "x", CapacityMAh: 1, VoltageV: 1, RecognitionShare: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestBudgetMJ(t *testing.T) {
	p := Profile{Name: "x", CapacityMAh: 1000, VoltageV: 4, RecognitionShare: 0.5}
	// 1000 mAh × 3.6 × 4 V × 1000 × 0.5 = 7,200,000 mJ = 7.2 kJ.
	if got := p.BudgetMJ(); math.Abs(got-7.2e6) > 1 {
		t.Fatalf("budget = %v", got)
	}
}

func TestFramesAndRuntimeOnCharge(t *testing.T) {
	p := Profile{Name: "x", CapacityMAh: 1000, VoltageV: 4, RecognitionShare: 0.5}
	frames := p.FramesOnCharge(100) // 7.2e6 / 100 = 72000 frames
	if math.Abs(frames-72000) > 1 {
		t.Fatalf("frames = %v", frames)
	}
	// 72000 frames at 15 fps = 4800 s = 80 min.
	rt := p.RuntimeOnCharge(100, 15)
	if d := rt - 80*time.Minute; d < -time.Second || d > time.Second {
		t.Fatalf("runtime = %v", rt)
	}
	if p.FramesOnCharge(0) != 0 {
		t.Fatal("zero energy should give zero frames (avoid Inf)")
	}
	if p.RuntimeOnCharge(100, 0) != 0 {
		t.Fatal("zero fps should give zero runtime")
	}
}

func TestMeterLifecycle(t *testing.T) {
	if _, err := NewMeter(Profile{}); err == nil {
		t.Fatal("bad profile accepted")
	}
	m, err := NewMeter(Profile{Name: "x", CapacityMAh: 1, VoltageV: 1, RecognitionShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Budget: 1 × 3.6 × 1 × 1000 = 3600 mJ.
	if m.Remaining() != 1 || m.Empty() {
		t.Fatal("fresh meter not full")
	}
	m.Drain(1800)
	if got := m.Remaining(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("remaining = %v", got)
	}
	m.Drain(-50) // ignored
	if m.SpentMJ() != 1800 {
		t.Fatalf("spent = %v", m.SpentMJ())
	}
	m.Drain(1e9)
	if !m.Empty() || m.Remaining() != 0 {
		t.Fatal("overdrained meter not empty")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m, err := NewMeter(TypicalPhone())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Drain(1)
			}
		}()
	}
	wg.Wait()
	if m.SpentMJ() != 8000 {
		t.Fatalf("spent = %v", m.SpentMJ())
	}
}

// Property: remaining is always in [0,1] and non-increasing under
// drains.
func TestMeterMonotoneProperty(t *testing.T) {
	f := func(drains []float64) bool {
		m, err := NewMeter(TypicalPhone())
		if err != nil {
			return false
		}
		prev := m.Remaining()
		for _, d := range drains {
			m.Drain(d)
			cur := m.Remaining()
			if cur < 0 || cur > 1 || cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
