package cachestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

// TestQuarantineLifecycle walks one entry through the full state
// machine: refutes accumulate, the threshold quarantines (index
// removal), failed parole holds then evicts, successful parole
// reinstates with cleared counters.
func TestQuarantineLifecycle(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 8, QuarantineThreshold: 2, ParoleFailLimit: 2})
	id, err := s.Insert(vec(1, 0), "door", 0.9, "dnn", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.Refute(id) {
		t.Fatal("first refute must not quarantine at threshold 2")
	}
	// A confirm forgives the outstanding refute.
	s.Confirm(id)
	if s.Refute(id) {
		t.Fatal("refute after forgiveness must not quarantine")
	}
	if !s.Refute(id) {
		t.Fatal("second outstanding refute must quarantine")
	}
	if !s.Quarantined(id) {
		t.Fatal("entry not marked quarantined")
	}
	if _, ok := s.Label(id); ok {
		t.Fatal("Label resolved a quarantined entry")
	}
	if ns, err := s.Nearest(vec(1, 0), 4); err != nil || len(ns) != 0 {
		t.Fatalf("quarantined entry still a candidate: %v, %v", ns, err)
	}
	if out := s.Parole(id, false); out != ParoleHeld {
		t.Fatalf("first failed parole = %v, want held", out)
	}
	if out := s.Parole(id, true); out != ParoleReinstated {
		t.Fatalf("parole = %v, want reinstated", out)
	}
	e, ok := s.Get(id)
	if !ok || e.Quarantined || e.Refutes != 0 || e.ParoleFails != 0 {
		t.Fatalf("reinstated entry = %+v", e)
	}
	if ns, err := s.Nearest(vec(1, 0), 4); err != nil || len(ns) != 1 {
		t.Fatalf("reinstated entry not indexed: %v, %v", ns, err)
	}
	// Quarantine again and fail parole out.
	s.Refute(id)
	s.Refute(id)
	if out := s.Parole(id, false); out != ParoleHeld {
		t.Fatalf("parole = %v, want held", out)
	}
	if out := s.Parole(id, false); out != ParoleEvicted {
		t.Fatalf("parole = %v, want evicted", out)
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("evicted entry still live")
	}
	st := s.QuarantineStats()
	if st.Active != 0 || st.Total != 2 || st.Paroled != 1 || st.Evicted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQuarantineCountersProperty drives a random audit workload —
// inserts, confirms, refutes, paroles, removals — and checks the
// invariants the engine relies on after every step: confirm/refute/
// parole-fail counters never go negative, quarantined entries never
// resolve through Label or appear in Nearest, and the Active counter
// matches a direct scan.
func TestQuarantineCountersProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		s, _ := newTestStore(t, Config{Capacity: 32, QuarantineThreshold: 2, ParoleFailLimit: 3})
		var ids []lsh.ID
		pick := func() (lsh.ID, bool) {
			if len(ids) == 0 {
				return 0, false
			}
			return ids[rng.Intn(len(ids))], true
		}
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 3:
				id, err := s.Insert(vec(rng.Float64(), rng.Float64()),
					fmt.Sprintf("class-%d", rng.Intn(5)), 0.9, "dnn", time.Millisecond)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			case op < 5:
				if id, ok := pick(); ok {
					s.Confirm(id)
				}
			case op < 8:
				if id, ok := pick(); ok {
					s.Refute(id)
				}
			case op < 9:
				if id, ok := pick(); ok {
					s.Parole(id, rng.Intn(2) == 0)
				}
			default:
				if id, ok := pick(); ok {
					s.Remove(id)
				}
			}
			active := 0
			for _, e := range s.Snapshot() {
				if e.Confirms < 0 || e.Refutes < 0 || e.ParoleFails < 0 {
					t.Fatalf("seed %d step %d: negative audit counter: %+v", seed, step, e)
				}
				if e.Quarantined {
					active++
					if _, ok := s.Label(e.ID); ok {
						t.Fatalf("seed %d step %d: Label resolved quarantined %d", seed, step, e.ID)
					}
				}
			}
			if st := s.QuarantineStats(); st.Active != active {
				t.Fatalf("seed %d step %d: Active=%d, scan found %d", seed, step, st.Active, active)
			}
		}
		// Every remaining quarantined entry must be invisible to search.
		for _, e := range s.Snapshot() {
			if !e.Quarantined {
				continue
			}
			ns, err := s.Nearest(e.Vec, s.Len())
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range ns {
				if n.ID == e.ID {
					t.Fatalf("seed %d: quarantined %d returned by Nearest", seed, e.ID)
				}
			}
		}
	}
}

// TestQuarantineSnapshotDifferential: quarantine state round-trips
// through the snapshot wire format into every store topology. A
// quarantined entry must come back quarantined — and stay out of the
// candidate set — whether the importer has 1, 2, 4, or 7 shards.
func TestQuarantineSnapshotDifferential(t *testing.T) {
	vecs := shardTestVecs(t, 40, 31)
	src, err := NewSharded(ShardedConfig{
		Config: Config{Capacity: 256, QuarantineThreshold: 1},
		Dim:    shardTestDim,
		Shards: 1,
	}, func(int) (lsh.Index, error) {
		return lsh.NewHyperplane(shardTestDim, 8, 4, 99)
	}, simclock.NewVirtual(time.Unix(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	quarantined := map[string]bool{}
	for i, v := range vecs {
		label := fmt.Sprintf("class-%d", i)
		id, err := src.Insert(v, label, 0.9, "dnn", time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		s := src
		switch i % 3 {
		case 0: // healthy, with some audit history
			s.Confirm(id)
		case 1: // quarantined
			if !s.Refute(id) {
				t.Fatalf("refute at threshold 1 did not quarantine %d", id)
			}
			quarantined[label] = true
		default: // untouched
		}
	}
	var snap bytes.Buffer
	if err := src.Export(&snap); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		dst, err := NewSharded(ShardedConfig{
			Config: Config{Capacity: 256, QuarantineThreshold: 1},
			Dim:    shardTestDim,
			Shards: shards,
		}, func(int) (lsh.Index, error) {
			return lsh.NewHyperplane(shardTestDim, 8, 4, 99)
		}, simclock.NewVirtual(time.Unix(0, 0)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Import(bytes.NewReader(snap.Bytes())); err != nil {
			t.Fatalf("shards=%d: import: %v", shards, err)
		}
		if dst.Len() != len(vecs) {
			t.Fatalf("shards=%d: %d entries imported, want %d", shards, dst.Len(), len(vecs))
		}
		var got []string
		for _, e := range dst.Snapshot() {
			if e.Quarantined {
				got = append(got, e.Label)
				if _, ok := dst.Label(e.ID); ok {
					t.Fatalf("shards=%d: Label resolved imported quarantined %q", shards, e.Label)
				}
				ns, err := dst.Nearest(e.Vec, dst.Len())
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range ns {
					if n.ID == e.ID {
						t.Fatalf("shards=%d: imported quarantined %q in candidate set", shards, e.Label)
					}
				}
			} else if e.Confidence > 0 && quarantined[e.Label] {
				t.Fatalf("shards=%d: %q imported unquarantined", shards, e.Label)
			}
		}
		var want []string
		for l := range quarantined {
			want = append(want, l)
		}
		sort.Strings(got)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d quarantined after import, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: quarantined set %v, want %v", shards, got, want)
			}
		}
		if st := dst.QuarantineStats(); st.Active != len(want) {
			t.Fatalf("shards=%d: Active=%d, want %d", shards, st.Active, len(want))
		}
	}
}
