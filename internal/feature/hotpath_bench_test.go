package feature

// Hot-path extraction benchmarks, all reporting allocs/op; `make
// bench-hotpath` pins their allocation budgets via cmd/benchgate. The
// frame shape matches the standard pipeline: 48×48 grayscale, 8×8 grid
// + 16-bin histogram (80 dims).

import (
	"math/rand"
	"testing"

	"approxcache/internal/vision"
)

func benchImage(b *testing.B, w, h int) *vision.Image {
	b.Helper()
	im := vision.NewImage(w, h)
	r := rand.New(rand.NewSource(3))
	for i := range im.Pix {
		im.Pix[i] = r.Float64()
	}
	return im
}

// BenchmarkHotPathFusedExtract is the full default descriptor computed
// by the fused single-pass path into a reused buffer. Budget: 0
// allocs/op.
func BenchmarkHotPathFusedExtract(b *testing.B) {
	e := DefaultExtractor().(IntoExtractor)
	im := benchImage(b, 48, 48)
	dst := make(Vector, 0, e.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := e.ExtractInto(im, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = v[:0]
	}
}

// BenchmarkHotPathGridIntegral is the summed-area-table grid path.
// Budget: 0 allocs/op at steady state (the table comes from a pool).
func BenchmarkHotPathGridIntegral(b *testing.B) {
	g := GridExtractor{Cols: 8, Rows: 8}
	im := benchImage(b, 48, 48)
	dst := make(Vector, 0, g.Dim())
	if _, err := g.ExtractInto(im, dst); err != nil {
		b.Fatal(err) // warm the SAT pool before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := g.ExtractInto(im, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = v[:0]
	}
}

// BenchmarkGridNaive is the pre-integral-image per-cell summation, kept
// as the speedup reference for EXPERIMENTS.md (not budget-gated).
func BenchmarkGridNaive(b *testing.B) {
	g := GridExtractor{Cols: 8, Rows: 8}
	im := benchImage(b, 48, 48)
	dst := make(Vector, 0, g.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := g.extractNaiveInto(im, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = v[:0]
	}
}

// BenchmarkHotPathHistogram is the standalone histogram pass. Budget: 0
// allocs/op.
func BenchmarkHotPathHistogram(b *testing.B) {
	h := HistogramExtractor{Bins: 16}
	im := benchImage(b, 48, 48)
	dst := make(Vector, 0, h.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := h.ExtractInto(im, dst)
		if err != nil {
			b.Fatal(err)
		}
		dst = v[:0]
	}
}
