package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"approxcache/internal/dnn"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// Typed pipeline errors. Callers match with errors.Is.
var (
	// ErrBadFrame: the frame is structurally unusable (nil, zero
	// dimensions, non-finite pixels). The engine refuses it rather than
	// feeding garbage to the gates or the cache.
	ErrBadFrame = errors.New("core: bad frame")
	// ErrBadIMUWindow: the IMU window carries non-finite readings that
	// would poison the motion statistics.
	ErrBadIMUWindow = errors.New("core: bad imu window")
	// ErrClassifierDown: the classifier watchdog has tripped (or the
	// final attempt failed after the breaker opened) and no degraded
	// answer was available.
	ErrClassifierDown = errors.New("core: classifier down")
	// ErrDeadlineExceeded: the frame's request deadline expired and no
	// rung of the degradation ladder had an answer for it. This is the
	// ladder's last resort for deadline-carrying requests — typed, never
	// a silent drop.
	ErrDeadlineExceeded = errors.New("core: request deadline exceeded")
	// ErrOverloadShed: admission control refused the frame's DNN
	// fallback and no rung of the degradation ladder had an answer.
	ErrOverloadShed = errors.New("core: shed by admission control")
)

// DegradationLevel records how far down the serving ladder a frame's
// answer came from. The ladder is: full pipeline (DegradeNone) → best
// approximate cache hit under a relaxed radius (DegradeCacheOnly) →
// repeat of the last served result (DegradeLastResult). Anything
// degraded is served with halved confidence and Source
// metrics.SourceFallback so callers can tell stale answers apart.
type DegradationLevel int

// Degradation levels, best to worst.
const (
	// DegradeNone: the frame was served by the healthy pipeline.
	DegradeNone DegradationLevel = iota
	// DegradeCacheOnly: the DNN was unavailable; the answer is the
	// nearest cached entry within a relaxed distance.
	DegradeCacheOnly
	// DegradeLastResult: the DNN and the cache both had nothing; the
	// answer repeats the previous frame's result.
	DegradeLastResult
	// DegradeOverload: admission control (or a full inference queue)
	// shed the frame before the DNN could run; the answer came from the
	// same cache-only/last-result ladder, typed metrics.SourceShed.
	DegradeOverload
	// DegradeDeadline: the request deadline expired before the DNN
	// could run (in the gate ladder or the inference queue); the answer
	// came from the ladder, typed metrics.SourceShed.
	DegradeDeadline
)

// String returns the level name.
func (d DegradationLevel) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradeCacheOnly:
		return "cache-only"
	case DegradeLastResult:
		return "last-result"
	case DegradeOverload:
		return "overload"
	case DegradeDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("DegradationLevel(%d)", int(d))
	}
}

// WatchdogConfig tunes the classifier supervisor. The zero value is a
// transparent passthrough (no timeout, no retries, never trips), so
// configs built before the watchdog existed keep their behaviour.
type WatchdogConfig struct {
	// Disabled bypasses the watchdog entirely (ablation).
	Disabled bool
	// CallTimeout bounds one classifier call on the wall clock; a call
	// exceeding it counts as failed and its frame is charged the
	// timeout. Timeouts are not retried — a wedged delegate will not
	// un-wedge in a frame budget. Zero disables the bound.
	CallTimeout time.Duration
	// MaxRetries is how many times a *failed* (not timed-out) call is
	// retried before the frame gives up. Transient faults — an OOM-
	// killed delegate, a thermal abort — often clear immediately.
	MaxRetries int
	// RetryBackoff is the simulated pause charged to the frame before
	// each retry.
	RetryBackoff time.Duration
	// RetryJitter is the maximum extra pause added to each retry's
	// backoff, derived deterministically from the session's jitter seed
	// and the attempt number. Pool sessions therefore spread their
	// retries instead of hammering a recovering classifier in lockstep,
	// while single-session runs stay reproducible. Zero disables jitter.
	RetryJitter time.Duration
	// TripThreshold is how many consecutive failed calls open the
	// breaker. While open, calls fast-fail without touching the
	// classifier until Cooldown elapses on the engine clock, then one
	// probe is let through. Zero or negative never trips.
	TripThreshold int
	// Cooldown is how long (engine clock) the breaker stays open
	// between probes.
	Cooldown time.Duration
}

// DefaultWatchdogConfig returns supervision tuned for a ~100 ms-class
// model: a 1 s call deadline (10× the expected cost), one quick retry,
// and a breaker that opens after 3 straight failures and re-probes
// every 500 ms.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		CallTimeout:   time.Second,
		MaxRetries:    1,
		RetryBackoff:  20 * time.Millisecond,
		RetryJitter:   10 * time.Millisecond,
		TripThreshold: 3,
		Cooldown:      500 * time.Millisecond,
	}
}

// Validate reports whether the configuration is usable.
func (c WatchdogConfig) Validate() error {
	if c.CallTimeout < 0 {
		return fmt.Errorf("core: watchdog CallTimeout must be non-negative, got %v", c.CallTimeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: watchdog MaxRetries must be non-negative, got %d", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("core: watchdog RetryBackoff must be non-negative, got %v", c.RetryBackoff)
	}
	if c.RetryJitter < 0 {
		return fmt.Errorf("core: watchdog RetryJitter must be non-negative, got %v", c.RetryJitter)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("core: watchdog Cooldown must be non-negative, got %v", c.Cooldown)
	}
	return nil
}

// watchdog supervises the classifier: per-call wall-clock deadline,
// bounded retry for transient errors, and a consecutive-failure breaker
// with engine-clock cooldown and half-open probing. It reports every
// event to the session stats. Safe for concurrent use.
type watchdog struct {
	cfg   WatchdogConfig
	inner Classifier
	clock simclock.Clock
	stats *metrics.SessionStats

	mu        sync.Mutex
	failures  int // consecutive failed calls
	tripped   bool
	trippedAt time.Time // engine clock
}

func newWatchdog(cfg WatchdogConfig, inner Classifier, clock simclock.Clock, stats *metrics.SessionStats) *watchdog {
	return &watchdog{cfg: cfg, inner: inner, clock: clock, stats: stats}
}

// infer runs one supervised classification. penalty is the simulated
// latency the supervision itself cost (timeouts, retry backoff) and
// must be charged to the frame whether or not the call succeeded.
//
// deadline is the frame's wall-clock request deadline (zero = none):
// it caps the per-call timeout and, when the classifier front supports
// it (dnn.DeadlineInferrer), rides along so the micro-batcher can
// stale-drop the frame if it expires in the queue. jitterSeed selects
// the session's deterministic retry-jitter schedule; the watchdog is
// shared pool-wide, so the seed travels with the call.
func (w *watchdog) infer(im *vision.Image, deadline time.Time, jitterSeed uint64) (inf dnn.Inference, penalty time.Duration, err error) {
	if w.cfg.Disabled {
		inf, err = w.call(im, deadline)
		return inf, 0, err
	}
	w.mu.Lock()
	if w.tripped && w.clock.Now().Sub(w.trippedAt) < w.cfg.Cooldown {
		w.mu.Unlock()
		w.stats.ObserveWatchdogFastFail()
		return dnn.Inference{}, 0, fmt.Errorf("%w: breaker open", ErrClassifierDown)
	}
	// Either healthy, or the cooldown elapsed: let this call probe.
	w.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt <= w.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			penalty += w.cfg.RetryBackoff + w.retryJitter(jitterSeed, attempt)
			w.stats.ObserveWatchdogRetry()
		}
		var timedOut bool
		var waited time.Duration
		inf, lastErr, timedOut, waited = w.callOnce(im, deadline)
		if timedOut {
			penalty += waited
			w.stats.ObserveWatchdogTimeout()
			break // a wedged call will not un-wedge within a frame
		}
		if lastErr == nil {
			w.observeSuccess()
			return inf, penalty, nil
		}
		if dnn.IsOverloadError(lastErr) || errors.Is(lastErr, dnn.ErrBatcherClosed) {
			// Queue pressure and shutdown refusals are not classifier
			// failures: the model never saw the frame, so retrying
			// won't drain the queue and the breaker must not trip.
			return dnn.Inference{}, penalty, lastErr
		}
	}
	if w.observeFailure() {
		return dnn.Inference{}, penalty, fmt.Errorf("%w: %v", ErrClassifierDown, lastErr)
	}
	return dnn.Inference{}, penalty, fmt.Errorf("core: infer failed: %w", lastErr)
}

// call invokes the inner classifier, routing through its deadline-aware
// entry point when one exists and the frame carries a deadline.
func (w *watchdog) call(im *vision.Image, deadline time.Time) (dnn.Inference, error) {
	if !deadline.IsZero() {
		if di, ok := w.inner.(dnn.DeadlineInferrer); ok {
			return di.InferDeadline(im, deadline)
		}
	}
	return w.inner.Infer(im)
}

// retryJitter returns the deterministic extra pause for one retry,
// in [0, RetryJitter), derived from the session seed and attempt via a
// splitmix64-style mix so distinct sessions get divergent schedules.
func (w *watchdog) retryJitter(seed uint64, attempt int) time.Duration {
	if w.cfg.RetryJitter <= 0 {
		return 0
	}
	x := seed + 0x9e3779b97f4a7c15*uint64(attempt+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return time.Duration(x % uint64(w.cfg.RetryJitter))
}

// callOnce runs a single classifier call under the wall-clock timeout:
// CallTimeout, capped by the time remaining until the request deadline.
// On timeout the call's goroutine is abandoned (it exits when the inner
// call eventually returns; the buffered channel never blocks it) and
// waited reports the bound actually charged.
func (w *watchdog) callOnce(im *vision.Image, deadline time.Time) (dnn.Inference, error, bool, time.Duration) {
	timeout := w.cfg.CallTimeout
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// The budget is already gone; don't occupy the accelerator.
			return dnn.Inference{}, dnn.ErrExpiredInQueue, false, 0
		}
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
	}
	if timeout <= 0 {
		inf, err := w.call(im, deadline)
		return inf, err, false, 0
	}
	type outcome struct {
		inf dnn.Inference
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		inf, err := w.call(im, deadline)
		ch <- outcome{inf, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.inf, o.err, false, 0
	case <-timer.C:
		return dnn.Inference{}, fmt.Errorf("core: classifier call exceeded %v", timeout), true, timeout
	}
}

func (w *watchdog) observeSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tripped {
		w.tripped = false
		w.stats.ObserveWatchdogRecovery()
	}
	w.failures = 0
}

// observeFailure records a failed call and reports whether the breaker
// is (now) open. A failed half-open probe re-arms the cooldown.
func (w *watchdog) observeFailure() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failures++
	if w.cfg.TripThreshold <= 0 {
		return false
	}
	if w.failures < w.cfg.TripThreshold && !w.tripped {
		return false
	}
	if !w.tripped {
		w.tripped = true
		w.stats.ObserveWatchdogTrip()
	}
	w.trippedAt = w.clock.Now()
	return true
}
