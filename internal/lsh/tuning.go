package lsh

import "fmt"

// Tuning configures the candidate pipeline layered on top of the basic
// exact-bucket LSH lookup. The zero value reproduces the classic
// pipeline exactly: one probe per table, no sketch prefilter, no
// quantized scoring. All three mechanisms are bit-deterministic — the
// probe order is a fixed function of the query's hyperplane margins and
// quantization rounding is fixed — so tuned indexes replay identically
// across runs, shards, and snapshot round-trips.
type Tuning struct {
	// Probes is the number of buckets examined per table: the query's
	// own bucket plus Probes−1 perturbed buckets, visited in increasing
	// order of perturbation cost (the summed hyperplane margins of the
	// flipped bits — buckets most likely to hide near neighbors come
	// first). 0 or 1 probes only the exact bucket. Multi-probe lets an
	// index reach a T-table configuration's recall with roughly T/2
	// tables, halving signature arithmetic and insert cost.
	Probes int
	// SketchBits enables the packed binary sign sketch: 0 (off), 64, or
	// 128 bits per entry, stored in a flat []uint64 arena. Candidates
	// whose sketch differs from the query's by more than MaxHamming
	// bits are rejected with a popcount — no float math — before any
	// distance computation.
	SketchBits int
	// MaxHamming is the sketch prefilter threshold. 0 selects the
	// default, 3/8 of SketchBits — conservative enough that true
	// nearest neighbors survive (the property tests pin this), tight
	// enough to reject most far candidates in crowded buckets.
	MaxHamming int
	// Quantize stores an int8 quantized copy of each resident vector
	// (per-entry scale and offset) and scores surviving candidates with
	// an integer dot kernel; only the best RerankK×k candidates pay the
	// exact float64 distance.
	Quantize bool
	// RerankK is the re-rank width multiplier: the quantized stage
	// keeps the top RerankK×k candidates by approximate distance for
	// exact scoring. 0 selects the default (4).
	RerankK int
}

// Default pipeline parameters.
const (
	// DefaultRerankK is the default re-rank width multiplier.
	DefaultRerankK = 4
	// defaultMaxHammingNum/Den set the default prefilter threshold to
	// SketchBits·3/8 (24 of 64 bits): a sign-sketch Hamming distance of
	// 3/8·bits corresponds to an angular gap of ~67°, far beyond any
	// same-scene pair in the cache's feature space.
	defaultMaxHammingNum = 3
	defaultMaxHammingDen = 8
)

// DefaultTuning returns the recommended tuned pipeline: 8 probes per
// table, a 64-bit sketch prefilter, and quantized scoring. Pair it with
// half the tables the untuned index would use.
func DefaultTuning() Tuning {
	return Tuning{Probes: 8, SketchBits: 64, Quantize: true}
}

// Validate reports whether the tuning is usable.
func (t Tuning) Validate() error {
	if t.Probes < 0 {
		return fmt.Errorf("lsh: Probes must be non-negative, got %d", t.Probes)
	}
	switch t.SketchBits {
	case 0, 64, 128:
	default:
		return fmt.Errorf("lsh: SketchBits must be 0, 64, or 128, got %d", t.SketchBits)
	}
	if t.MaxHamming < 0 || t.MaxHamming > t.SketchBits {
		return fmt.Errorf("lsh: MaxHamming must be in [0,%d], got %d", t.SketchBits, t.MaxHamming)
	}
	if t.MaxHamming > 0 && t.SketchBits == 0 {
		return fmt.Errorf("lsh: MaxHamming set without SketchBits")
	}
	if t.RerankK < 0 {
		return fmt.Errorf("lsh: RerankK must be non-negative, got %d", t.RerankK)
	}
	if t.RerankK > 0 && !t.Quantize {
		return fmt.Errorf("lsh: RerankK set without Quantize")
	}
	return nil
}

// normalize fills in defaults. Called once at index construction.
func (t Tuning) normalize() Tuning {
	if t.Probes <= 0 {
		t.Probes = 1
	}
	if t.SketchBits > 0 && t.MaxHamming == 0 {
		t.MaxHamming = t.SketchBits * defaultMaxHammingNum / defaultMaxHammingDen
	}
	if t.Quantize && t.RerankK == 0 {
		t.RerankK = DefaultRerankK
	}
	return t
}

// enabled reports whether any tuned mechanism is active (if not, the
// lookup path takes the exact-bucket fast path unchanged).
func (t Tuning) enabled() bool {
	return t.Probes > 1 || t.SketchBits > 0 || t.Quantize
}
