package vision

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEncodePNGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodePNG(&buf, nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := EncodePNG(&buf, &Image{}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	cs, err := NewClassSet(2, 32, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cs.Prototype(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePNG(&buf, src); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty png")
	}
	back, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 32 || back.H != 32 {
		t.Fatalf("size = %dx%d", back.W, back.H)
	}
	var worst float64
	for i := range src.Pix {
		if d := math.Abs(src.Pix[i] - back.Pix[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.0/100 {
		t.Fatalf("round-trip error %v too large", worst)
	}
}

func TestDecodePNGGarbage(t *testing.T) {
	if _, err := DecodePNG(strings.NewReader("not a png")); err == nil {
		t.Fatal("garbage decoded")
	}
}
