package p2p

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"approxcache/internal/feature"
)

// FuzzDecode exercises the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same kind (round-trip stability).
func FuzzDecode(f *testing.F) {
	// Seed corpus: every message kind plus hostile shapes.
	seeds := []Message{
		Query{Vec: feature.Vector{1, 2, 3}, K: 4},
		QueryResp{Found: true, Label: "class-1", Confidence: 0.5, Distance: 0.1},
		Gossip{Vec: feature.Vector{0.5}, Label: "x", Confidence: 1, SavedCost: time.Second},
		Ack{},
		Ping{From: "a"},
		Pong{From: "b", Entries: 7},
		DigestReq{},
		DigestResp{Digest: Digest{Centroids: []feature.Vector{{1, 0}, {0, 1}}}},
	}
	// v2-only kinds round out the corpus.
	seeds = append(seeds,
		DigestDeltaReq{Since: 1<<40 | 3},
		DigestDeltaResp{Epoch: 1<<40 | 4, Removed: []uint64{2},
			Added: []DigestCentroid{{ID: 9, Vec: feature.Vector{1, -1}}}},
		GossipBatch{Items: []Gossip{{Vec: feature.Vector{1}, Label: "a", Confidence: 1}}},
	)
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Every kind also seeds its v2 framing.
		b2, err := AppendEncodeV2(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b2)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte{byte(KindQuery), 4, 0xFF, 0xFF})
	f.Add([]byte{wireV2Marker})
	f.Add([]byte{wireV2Marker, byte(KindQuery), 4, 0x80, 0x80, 0x80, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if msg.MsgKind() != msg2.MsgKind() {
			t.Fatalf("kind changed across round trip: %v vs %v",
				msg.MsgKind(), msg2.MsgKind())
		}
		// Anything decodable must also survive v2 re-framing: the v2
		// codec covers every kind, and quantization (lossy on vectors)
		// must still be stable on kind and non-vector fields.
		re2, err := AppendEncodeV2(nil, msg)
		if err != nil {
			t.Fatalf("decoded message failed to v2-encode: %v", err)
		}
		msg3, ver, err := DecodeWire(re2)
		if err != nil {
			t.Fatalf("v2 re-encoding failed to decode: %v", err)
		}
		if ver != WireV2 || msg3.MsgKind() != msg.MsgKind() {
			t.Fatalf("v2 round trip changed kind/version: %v v%d", msg3.MsgKind(), ver)
		}
	})
}

// FuzzDeltaApply drives random centroid churn through the service-side
// delta state and asserts the client-side apply path always reproduces
// exactly what a from-scratch full refetch would return.
func FuzzDeltaApply(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0))
	f.Add(int64(42), uint8(10), uint8(200))
	f.Add(int64(-7), uint8(digestHistoryLen+4), uint8(90))
	f.Fuzz(func(t *testing.T, seed int64, rounds uint8, lagPct uint8) {
		rng := rand.New(rand.NewSource(seed))
		d := newDigestEpochs()
		var st peerDigestState
		var since uint64
		pool := make([]feature.Vector, 10)
		for i := range pool {
			pool[i] = feature.Vector{float64(i), rng.Float64()}
		}
		for round := 0; round < int(rounds%32); round++ {
			var set []feature.Vector
			for _, v := range pool {
				if rng.Float64() < 0.5 {
					set = append(set, v)
				}
			}
			// A lagging client sometimes presents a stale or bogus
			// epoch; the service must fall back to a full snapshot and
			// apply must still converge.
			q := since
			if rng.Float64() < float64(lagPct)/255 {
				q = rng.Uint64()
			}
			resp := d.serve(set, q)
			got, err := st.apply(resp)
			if err != nil {
				// Only legal when a delta met empty client state; a
				// full snapshot must always apply.
				if resp.Full {
					t.Fatalf("round %d: full snapshot failed to apply: %v", round, err)
				}
				st, since = peerDigestState{}, 0
				continue
			}
			since = resp.Epoch
			var ref peerDigestState
			want, err := ref.apply(d.serve(set, 0))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: delta %v != full %v", round, got.Centroids, want.Centroids)
			}
		}
	})
}
