package imu

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleMagnitudes(t *testing.T) {
	s := Sample{Accel: [3]float64{3, 4, 0}, Gyro: [3]float64{0, 0, 2}}
	if m := s.AccelMagnitude(); math.Abs(m-5) > 1e-12 {
		t.Fatalf("accel magnitude = %v", m)
	}
	if m := s.GyroMagnitude(); math.Abs(m-2) > 1e-12 {
		t.Fatalf("gyro magnitude = %v", m)
	}
}

func TestRegimeString(t *testing.T) {
	names := map[Regime]string{
		Stationary: "stationary",
		Handheld:   "handheld",
		Walking:    "walking",
		Panning:    "panning",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if Regime(0).String() != "Regime(0)" {
		t.Fatalf("unknown regime string = %q", Regime(0).String())
	}
}

func TestSceneStable(t *testing.T) {
	if !Stationary.SceneStable() || !Handheld.SceneStable() {
		t.Fatal("stationary/handheld should be scene-stable")
	}
	if Walking.SceneStable() || Panning.SceneStable() {
		t.Fatal("walking/panning should not be scene-stable")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(0, 1); err == nil {
		t.Fatal("zero rate should error")
	}
	g, err := NewGenerator(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.RateHz() != 100 {
		t.Fatalf("RateHz = %d", g.RateHz())
	}
}

func TestGenerateErrors(t *testing.T) {
	g, err := NewGenerator(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(Regime(42), 0, time.Second); err == nil {
		t.Fatal("unknown regime should error")
	}
	if _, err := g.Generate(Stationary, 0, -time.Second); err == nil {
		t.Fatal("negative duration should error")
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := NewGenerator(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := g.Generate(Stationary, time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 200 {
		t.Fatalf("len = %d, want 200", len(ss))
	}
	if ss[0].Offset != time.Second {
		t.Fatalf("first offset = %v", ss[0].Offset)
	}
	for i := 1; i < len(ss); i++ {
		if ss[i].Offset <= ss[i-1].Offset {
			t.Fatal("offsets not strictly increasing")
		}
	}
}

// The generator's regimes must be statistically separable: that is the
// ground truth the motion detector is graded against.
func TestRegimeStatisticsSeparable(t *testing.T) {
	g, err := NewGenerator(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(r Regime) (accVar, gyroMean float64) {
		ss, err := g.Generate(r, 0, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var sum, sumSq, gy float64
		for _, s := range ss {
			m := s.AccelMagnitude()
			sum += m
			sumSq += m * m
			gy += s.GyroMagnitude()
		}
		n := float64(len(ss))
		mean := sum / n
		return sumSq/n - mean*mean, gy / n
	}
	statVar, statGyro := variance(Stationary)
	handVar, handGyro := variance(Handheld)
	walkVar, _ := variance(Walking)
	_, panGyro := variance(Panning)
	if statVar >= walkVar/10 {
		t.Fatalf("stationary accel var %v not ≪ walking %v", statVar, walkVar)
	}
	if handVar >= walkVar/4 {
		t.Fatalf("handheld accel var %v not ≪ walking %v", handVar, walkVar)
	}
	if statGyro >= panGyro/10 || handGyro >= panGyro/4 {
		t.Fatalf("gyro means not separable: stat=%v hand=%v pan=%v", statGyro, handGyro, panGyro)
	}
}

func TestDetectorConfigValidate(t *testing.T) {
	good := DefaultDetectorConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DetectorConfig{
		{},
		{Window: time.Second},
		{Window: time.Second, AccelVarThreshold: 1},
		{Window: time.Second, AccelVarThreshold: 1, GyroMeanThreshold: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewDetector(DetectorConfig{}); err == nil {
		t.Fatal("NewDetector accepted bad config")
	}
}

func feed(t *testing.T, d *Detector, r Regime, seed int64, dur time.Duration) {
	t.Helper()
	g, err := NewGenerator(100, seed)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := g.Generate(r, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveAll(ss)
}

func TestDetectorClassifiesRegimes(t *testing.T) {
	tests := []struct {
		regime Regime
		want   bool
	}{
		{Stationary, true},
		{Handheld, true},
		{Walking, false},
		{Panning, false},
	}
	for _, tt := range tests {
		t.Run(tt.regime.String(), func(t *testing.T) {
			d, err := NewDetector(DefaultDetectorConfig())
			if err != nil {
				t.Fatal(err)
			}
			feed(t, d, tt.regime, 11, 2*time.Second)
			d.Mark() // judge stationarity alone, not accumulated rotation
			st := d.State()
			if st.Stationary != tt.want {
				t.Fatalf("regime %v: stationary=%v (state %+v), want %v",
					tt.regime, st.Stationary, st, tt.want)
			}
		})
	}
}

func TestDetectorEmptyIsNotStationary(t *testing.T) {
	d, err := NewDetector(DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.State().Stationary || d.AllowReuse() {
		t.Fatal("empty detector must not report stationary")
	}
}

func TestRotationIntegrationAndMark(t *testing.T) {
	d, err := NewDetector(DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1 rad/s yaw for 1 second at 100 Hz ≈ 0.99 rad integrated.
	step := 10 * time.Millisecond
	for i := 0; i < 100; i++ {
		d.Observe(Sample{Offset: time.Duration(i) * step, Gyro: [3]float64{0, 1, 0}})
	}
	rot := d.State().RotationSinceMark
	if rot < 0.9 || rot > 1.1 {
		t.Fatalf("integrated rotation = %v, want ~1", rot)
	}
	d.Mark()
	if d.State().RotationSinceMark != 0 {
		t.Fatal("Mark did not reset rotation")
	}
}

func TestAllowReuseGatesOnRotation(t *testing.T) {
	cfg := DefaultDetectorConfig()
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, Stationary, 12, time.Second)
	d.Mark()
	if !d.AllowReuse() {
		t.Fatal("stationary device with no rotation should allow reuse")
	}
	// Inject a quick turn exceeding MaxRotation, then return to rest:
	// the window may look stationary again but the accumulated
	// rotation must still block reuse.
	last := d.lastOff
	for i := 1; i <= 20; i++ {
		d.Observe(Sample{
			Offset: last + time.Duration(i)*10*time.Millisecond,
			Gyro:   [3]float64{0, 2, 0},
		})
	}
	g, err := NewGenerator(100, 13)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := g.Generate(Stationary, d.lastOff+10*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d.ObserveAll(ss)
	if !d.State().Stationary {
		t.Fatal("device should look stationary again after settling")
	}
	if d.AllowReuse() {
		t.Fatal("reuse allowed despite large accumulated rotation")
	}
}

func TestObserveDropsOutOfOrder(t *testing.T) {
	d, err := NewDetector(DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(Sample{Offset: time.Second})
	d.Observe(Sample{Offset: 500 * time.Millisecond, Gyro: [3]float64{9, 9, 9}})
	if d.State().Samples != 1 {
		t.Fatalf("out-of-order sample accepted: %+v", d.State())
	}
	if d.State().RotationSinceMark != 0 {
		t.Fatal("out-of-order sample affected rotation")
	}
}

func TestWindowTrimming(t *testing.T) {
	cfg := DefaultDetectorConfig()
	cfg.Window = 100 * time.Millisecond
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d.Observe(Sample{Offset: time.Duration(i) * 10 * time.Millisecond})
	}
	// 100 ms window at 10 ms spacing keeps ~11 samples.
	if n := d.State().Samples; n > 12 {
		t.Fatalf("window holds %d samples, want <= 12", n)
	}
}

// Property: rotation integration is non-negative and additive across
// arbitrary in-order gyro streams, and variance is never negative.
func TestDetectorInvariantsProperty(t *testing.T) {
	f := func(gyros []float64) bool {
		cfg := DefaultDetectorConfig()
		d, err := NewDetector(cfg)
		if err != nil {
			return false
		}
		prev := 0.0
		for i, gRaw := range gyros {
			g := math.Mod(math.Abs(gRaw), 3)
			d.Observe(Sample{
				Offset: time.Duration(i) * 10 * time.Millisecond,
				Gyro:   [3]float64{g, 0, 0},
			})
			st := d.State()
			if st.RotationSinceMark < prev-1e-9 {
				return false
			}
			if st.AccelVariance < 0 {
				return false
			}
			prev = st.RotationSinceMark
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
