package feature

import "math"

// Int8 quantization primitives for the approximate-cache candidate
// pipeline. A resident vector is stored once in full float64 precision
// (ground truth for the final re-rank) and once as an int8 code vector
// with a per-vector affine map value ≈ offset + scale·code. Candidate
// scoring then runs on the code vectors — an integer dot kernel over
// one-eighth the memory — and only the surviving top few candidates
// pay the full-precision distance.
//
// All rounding is math.Round (half away from zero), fixed as part of
// the on-disk/in-memory determinism contract: the same vector always
// quantizes to the same codes on every platform.

// QuantRange is the symmetric code range: codes live in
// [-QuantRange, QuantRange]. 127 keeps the map invertible within int8
// without ever producing -128.
const QuantRange = 127

// Quant describes one vector's affine quantization map plus the
// precomputed terms the approximate-distance formula needs.
type Quant struct {
	// Scale and Offset reconstruct values: v[i] ≈ Offset + Scale·code[i].
	Scale  float64
	Offset float64
	// SumQ is Σ codes[i], used to fold the offsets into the integer dot.
	SumQ int32
	// NormSq is the EXACT squared L2 norm of the original float vector
	// (not the reconstruction), so approximate distances stay anchored
	// to true magnitudes.
	NormSq float64
}

// QuantizeInto writes v's int8 codes into dst (which must have len(v))
// and returns the affine map. The map centers the code range on the
// vector's own min/max, so flat vectors quantize to all-zero codes with
// Scale 0.
func QuantizeInto(v Vector, dst []int8) Quant {
	var q Quant
	if len(v) == 0 {
		return q
	}
	min, max := v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	q.Offset = (max + min) / 2
	q.Scale = (max - min) / (2 * QuantRange)
	inv := 0.0
	if q.Scale != 0 {
		inv = 1 / q.Scale
	}
	var sum int32
	for i, x := range v {
		c := math.Round((x - q.Offset) * inv)
		if c > QuantRange {
			c = QuantRange
		} else if c < -QuantRange {
			c = -QuantRange
		}
		dst[i] = int8(c)
		sum += int32(dst[i])
	}
	q.SumQ = sum
	var n2 float64
	for _, x := range v {
		n2 += x * x
	}
	q.NormSq = n2
	return q
}

// DequantizeInto reconstructs dst[i] = offset + scale·int8(codes[i])
// from raw two's-complement code bytes, the inverse of QuantizeInto's
// affine map (up to the quantization step). codes must have at least
// len(dst) bytes; taking the wire representation directly avoids an
// []int8 conversion copy on the receive path.
func DequantizeInto(dst Vector, codes []byte, scale, offset float64) {
	codes = codes[:len(dst)]
	for i := range dst {
		dst[i] = offset + scale*float64(int8(codes[i]))
	}
}

// DotInt8 returns the integer inner product Σ a[i]·b[i] of two code
// vectors. Callers guarantee equal lengths (hot path).
func DotInt8(a, b []int8) int32 {
	var sum int32
	b = b[:len(a)]
	for i, x := range a {
		sum += int32(x) * int32(b[i])
	}
	return sum
}

// ApproxSqDistance estimates ‖x−y‖² from two quantized vectors: the
// exact norms, minus twice the reconstructed inner product
//
//	x·y ≈ n·ox·oy + ox·sy·Σqy + oy·sx·Σqx + sx·sy·(qx·qy)
//
// The integer dot is the only per-dimension work. The estimate can be
// slightly negative for near-identical vectors; callers only compare
// estimates, so no clamping is applied.
func ApproxSqDistance(n int, qx, qy Quant, dot int32) float64 {
	xy := float64(n)*qx.Offset*qy.Offset +
		qx.Offset*qy.Scale*float64(qy.SumQ) +
		qy.Offset*qx.Scale*float64(qx.SumQ) +
		qx.Scale*qy.Scale*float64(dot)
	return qx.NormSq + qy.NormSq - 2*xy
}

// MustSqEuclidean is MustEuclidean without the final square root, for
// hot paths that only compare distances (ordering by squared L2 equals
// ordering by L2). Mismatched dimensions return +Inf.
func MustSqEuclidean(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
