package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"approxcache/internal/cachestore"
	"approxcache/internal/dnn"
	"approxcache/internal/lsh"
	"approxcache/internal/metrics"
	"approxcache/internal/simclock"
	"approxcache/internal/vision"
)

// newPoolFixture builds an n-session pool over a sharded store and a
// micro-batched classifier — the full serving-scale stack.
func newPoolFixture(t *testing.T, n, shards int) (*Pool, *cachestore.ShardedStore, *vision.ClassSet) {
	t.Helper()
	classes, err := vision.NewClassSet(6, 48, 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	classifier, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	batcher, err := dnn.NewBatcher(dnn.BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond}, classifier)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(batcher.Close)
	cfg := DefaultConfig()
	dim := cfg.Extractor.Dim()
	store, err := cachestore.NewSharded(cachestore.ShardedConfig{
		Config: cachestore.Config{Capacity: 256},
		Dim:    dim,
		Shards: shards,
	}, func(int) (lsh.Index, error) {
		return lsh.NewHyperplane(dim, 12, 4, 2)
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(n, cfg, Deps{Clock: clock, Classifier: batcher, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return pool, store, classes
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, DefaultConfig(), Deps{}); err == nil {
		t.Fatal("want error for pool size 0")
	}
	// Typed-nil store must be caught at construction, not at first use.
	classes, err := vision.NewClassSet(4, 48, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	classifier, err := dnn.NewClassifier(perfectProfile(), classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	var nilStore *cachestore.ShardedStore
	if _, err := NewPool(2, DefaultConfig(), Deps{
		Clock:      simclock.NewVirtual(time.Unix(0, 0)),
		Classifier: classifier,
		Store:      nilStore,
	}); err == nil {
		t.Fatal("want error for typed-nil store in approx mode")
	}
}

// TestPoolSharesInfrastructure: sessions share stats, watchdog, and
// store but keep private gate state.
func TestPoolSharesInfrastructure(t *testing.T) {
	pool, store, _ := newPoolFixture(t, 4, 2)
	if pool.Size() != 4 || len(pool.Sessions()) != 4 {
		t.Fatalf("size %d/%d, want 4", pool.Size(), len(pool.Sessions()))
	}
	first := pool.Session(0)
	for i := 1; i < pool.Size(); i++ {
		e := pool.Session(i)
		if e.stats != first.stats {
			t.Fatalf("session %d has private stats", i)
		}
		if e.wd != first.wd {
			t.Fatalf("session %d has private watchdog", i)
		}
		if e.deps.Store != cachestore.Interface(store) {
			t.Fatalf("session %d has private store", i)
		}
		if e.detector == first.detector || e.keyframes == first.keyframes {
			t.Fatalf("session %d shares gate state", i)
		}
	}
	if pool.Stats() != first.stats {
		t.Fatal("pool stats is not the shared scoreboard")
	}
}

// TestPoolConcurrentStreams drives every session from its own
// goroutine (run under -race). Streams share the store: once stream 0
// has cached a class, other streams may serve it from SourceLocal
// without ever running the DNN on it.
func TestPoolConcurrentStreams(t *testing.T) {
	const sessions = 4
	pool, store, classes := newPoolFixture(t, sessions, 2)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s + 1)))
			eng := pool.Session(s)
			for i := 0; i < 30; i++ {
				im, err := classes.Render(i%classes.NumClasses(), vision.DefaultPerturbation(), rng)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.ProcessWithTruth(im, stationaryWindow(time.Duration(i)*time.Second), dnn.LabelOf(i%classes.NumClasses())); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	stats := pool.Stats()
	if got := stats.Frames(); got != sessions*30 {
		t.Fatalf("frames = %d, want %d", got, sessions*30)
	}
	counts := stats.CountBySource()
	if counts[metrics.SourceDNN] == 0 {
		t.Fatal("no DNN frames at all")
	}
	if counts[metrics.SourceDNN] == sessions*30 {
		t.Fatal("every frame ran the DNN: no cross-stream reuse")
	}
	if store.Len() == 0 {
		t.Fatal("shared store is empty")
	}
}

// TestPoolDegradedServeIsolation: LastResult copies returned to one
// stream are unaffected by another stream's subsequent frames (the S2
// shared-slice race, fixed by storing Result by value).
func TestPoolDegradedServeIsolation(t *testing.T) {
	pool, _, classes := newPoolFixture(t, 2, 2)
	rng := rand.New(rand.NewSource(9))
	im0, err := classes.Render(0, vision.DefaultPerturbation(), rng)
	if err != nil {
		t.Fatal(err)
	}
	eng := pool.Session(0)
	res, err := eng.Process(im0, stationaryWindow(0))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := eng.LastResult()
	if !ok || snap.Label != res.Label {
		t.Fatalf("LastResult = %+v ok=%v, want %q", snap, ok, res.Label)
	}
	// Process a different class; the earlier copy must not change.
	im1, err := classes.Render(1, vision.HardPerturbation(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(im1, nil); err != nil {
		t.Fatal(err)
	}
	if snap.Label != res.Label {
		t.Fatalf("earlier LastResult copy mutated to %q", snap.Label)
	}
}
