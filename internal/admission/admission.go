// Package admission implements overload protection for the serving
// path: an AIMD concurrency limiter that gates entry to the expensive
// DNN fallback, and a brownout ladder that progressively disables the
// costlier reuse stages while the limiter is pinned at its floor.
//
// The limiter is a classic additive-increase/multiplicative-decrease
// controller over the number of in-flight fallback inferences. Every
// in-deadline completion nudges the limit up (additively, scaled by the
// current limit so growth is one slot per "window" of completions);
// every deadline miss or queue overflow multiplies it down toward a
// floor. Requests arriving above the limit are shed — answered from
// the degradation ladder at reduced confidence — instead of queueing
// without bound in front of a saturated accelerator.
//
// Brownout rides on the limiter: when it has been pressed to its floor
// for a sustained run of events the controller raises the brownout
// level, first disabling peer-to-peer queries, then replacing the
// homogenized-kNN vote with a first-candidate check. Calm runs of
// in-deadline completions with the limit off the floor lower it again.
// Both directions use hysteresis counters so one burst cannot flap the
// ladder.
package admission

import (
	"fmt"
	"sync"
)

// Level is a brownout rung. Higher levels shed more per-request work.
type Level int

// Brownout rungs, cheapest degradation first.
const (
	// LevelFull runs the whole pipeline.
	LevelFull Level = iota
	// LevelNoPeer skips peer-to-peer queries — the most expensive and
	// most shed-tolerant reuse stage.
	LevelNoPeer
	// LevelFirstCandidate additionally serves the nearest in-range
	// cache candidate without the homogenized-kNN vote.
	LevelFirstCandidate
)

// maxLevel is the deepest brownout rung.
const maxLevel = LevelFirstCandidate

// String returns the rung name.
func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelNoPeer:
		return "no-peer"
	case LevelFirstCandidate:
		return "first-candidate"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config tunes the controller. The zero value is DISABLED — overload
// protection is opt-in so existing deployments keep their behaviour.
type Config struct {
	// Enabled turns the controller on.
	Enabled bool
	// MinLimit is the concurrency floor the limiter can never back off
	// below (default 1). At least one fallback inference is always
	// admitted, so the pipeline keeps probing the accelerator.
	MinLimit int
	// MaxLimit caps additive growth (default 64).
	MaxLimit int
	// InitialLimit is the starting concurrency limit (default 8).
	InitialLimit int
	// Increase is the additive step per in-deadline completion, applied
	// as Increase/limit so the limit grows by about Increase per full
	// window of completions (default 1).
	Increase float64
	// Backoff multiplies the limit on a deadline miss or queue overflow
	// (default 0.5). Must be in (0, 1).
	Backoff float64
	// BackoffCooldown is the minimum number of completions between two
	// multiplicative backoffs, so one late burst costs one halving, not
	// one per frame in the burst (default 2).
	BackoffCooldown int
	// BrownoutRaiseAfter is how many consecutive pressure events (sheds
	// or backoffs with the limit at its floor) raise the brownout level
	// one rung (default 8).
	BrownoutRaiseAfter int
	// BrownoutLowerAfter is how many consecutive calm events
	// (in-deadline completions with the limit off the floor) lower it
	// one rung (default 64 — recovery is deliberately slower than
	// degradation).
	BrownoutLowerAfter int
}

// DefaultConfig returns an enabled controller with production defaults.
func DefaultConfig() Config {
	return Config{
		Enabled:            true,
		MinLimit:           1,
		MaxLimit:           64,
		InitialLimit:       8,
		Increase:           1,
		Backoff:            0.5,
		BackoffCooldown:    2,
		BrownoutRaiseAfter: 8,
		BrownoutLowerAfter: 64,
	}
}

// withDefaults fills zero fields of an enabled config.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MinLimit == 0 {
		c.MinLimit = d.MinLimit
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = d.MaxLimit
	}
	if c.InitialLimit == 0 {
		c.InitialLimit = d.InitialLimit
	}
	if c.Increase == 0 {
		c.Increase = d.Increase
	}
	if c.Backoff == 0 {
		c.Backoff = d.Backoff
	}
	if c.BackoffCooldown == 0 {
		c.BackoffCooldown = d.BackoffCooldown
	}
	if c.BrownoutRaiseAfter == 0 {
		c.BrownoutRaiseAfter = d.BrownoutRaiseAfter
	}
	if c.BrownoutLowerAfter == 0 {
		c.BrownoutLowerAfter = d.BrownoutLowerAfter
	}
	return c
}

// Validate reports whether the configuration is usable. A disabled
// config is always valid.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	c = c.withDefaults()
	if c.MinLimit < 1 {
		return fmt.Errorf("admission: MinLimit must be >= 1, got %d", c.MinLimit)
	}
	if c.MaxLimit < c.MinLimit {
		return fmt.Errorf("admission: MaxLimit %d below MinLimit %d", c.MaxLimit, c.MinLimit)
	}
	if c.InitialLimit < c.MinLimit || c.InitialLimit > c.MaxLimit {
		return fmt.Errorf("admission: InitialLimit %d outside [%d, %d]",
			c.InitialLimit, c.MinLimit, c.MaxLimit)
	}
	if c.Increase <= 0 {
		return fmt.Errorf("admission: Increase must be positive, got %v", c.Increase)
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		return fmt.Errorf("admission: Backoff must be in (0,1), got %v", c.Backoff)
	}
	if c.BackoffCooldown < 1 {
		return fmt.Errorf("admission: BackoffCooldown must be >= 1, got %d", c.BackoffCooldown)
	}
	if c.BrownoutRaiseAfter < 1 || c.BrownoutLowerAfter < 1 {
		return fmt.Errorf("admission: brownout hysteresis counts must be >= 1")
	}
	return nil
}

// Snapshot is a point-in-time copy of the controller's state and
// counters, safe to hand to reports and printouts.
type Snapshot struct {
	// Limit is the current concurrency limit (floor of the internal
	// fractional limit).
	Limit int `json:"limit"`
	// Inflight is the number of admitted, uncompleted requests.
	Inflight int `json:"inflight"`
	// Admitted and Shed count TryAcquire outcomes.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	// InDeadline and Late count Release outcomes.
	InDeadline int64 `json:"in_deadline"`
	Late       int64 `json:"late"`
	// Overflows counts queue-overflow completions (the batcher refused
	// or expired the request before the accelerator saw it).
	Overflows int64 `json:"overflows"`
	// Backoffs counts multiplicative decreases actually applied.
	Backoffs int64 `json:"backoffs"`
	// Level is the current brownout rung.
	Level Level `json:"level"`
	// Transitions counts brownout level changes in either direction.
	Transitions int64 `json:"transitions"`
	// AtFloor reports whether the limit sits at MinLimit.
	AtFloor bool `json:"at_floor"`
}

// Controller is the admission limiter plus brownout ladder. It is safe
// for concurrent use; one controller is shared by every session of a
// serving pool, because they share the accelerator it protects.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    float64
	inflight int

	admitted   int64
	shed       int64
	inDeadline int64
	late       int64
	overflows  int64
	backoffs   int64

	sinceBackoff int // completions since the last backoff
	pressureRun  int // consecutive pressure events
	calmRun      int // consecutive calm events
	level        Level
	transitions  int64
	onTransition func(from, to Level)
}

// New builds a controller. A nil return with nil error means the config
// is disabled — callers treat a nil controller as "no admission
// control".
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:          cfg,
		limit:        float64(cfg.InitialLimit),
		sinceBackoff: cfg.BackoffCooldown, // the first miss may back off immediately
	}, nil
}

// SetTransitionHook installs a callback invoked (under the controller
// lock — keep it cheap) on every brownout level change. Used to feed
// session stats.
func (c *Controller) SetTransitionHook(fn func(from, to Level)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onTransition = fn
}

// TryAcquire claims one in-flight slot. False means the request must be
// shed to the degradation ladder (and no Release call is owed).
func (c *Controller) TryAcquire() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight >= c.limitLocked() {
		c.shed++
		c.pressureLocked()
		return false
	}
	c.inflight++
	c.admitted++
	return true
}

// Release completes an admitted request. inDeadline reports whether the
// request finished within its deadline (always true when deadlines are
// off): in-deadline completions grow the limit additively, late ones
// back it off multiplicatively.
func (c *Controller) Release(inDeadline bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked()
	if inDeadline {
		c.inDeadline++
		c.limit += c.cfg.Increase / c.limit
		if ceil := float64(c.cfg.MaxLimit); c.limit > ceil {
			c.limit = ceil
		}
		c.calmLocked()
		return
	}
	c.late++
	c.backoffLocked()
}

// ReleaseOverflow completes an admitted request that never reached the
// accelerator because the inference queue refused it (full) or expired
// it. Overflow is a backoff signal just like a deadline miss.
func (c *Controller) ReleaseOverflow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked()
	c.overflows++
	c.backoffLocked()
}

func (c *Controller) releaseLocked() {
	if c.inflight > 0 {
		c.inflight--
	}
	c.sinceBackoff++
}

// backoffLocked applies a multiplicative decrease, rate-limited by the
// cooldown, and records pressure for the brownout ladder.
func (c *Controller) backoffLocked() {
	if c.sinceBackoff >= c.cfg.BackoffCooldown {
		c.limit *= c.cfg.Backoff
		if floor := float64(c.cfg.MinLimit); c.limit < floor {
			c.limit = floor
		}
		c.backoffs++
		c.sinceBackoff = 0
	}
	c.pressureLocked()
}

// pressureLocked records one pressure event: sheds and backoffs count
// toward raising the brownout level only while the limiter sits at its
// floor — a backoff from a high limit is normal congestion control, not
// brownout territory.
func (c *Controller) pressureLocked() {
	if c.limitLocked() > c.cfg.MinLimit {
		return
	}
	c.calmRun = 0
	c.pressureRun++
	if c.pressureRun >= c.cfg.BrownoutRaiseAfter && c.level < maxLevel {
		c.setLevelLocked(c.level + 1)
		c.pressureRun = 0
	}
}

// calmLocked records one calm event: in-deadline completions with the
// limit off the floor. Sustained calm lowers the brownout level.
func (c *Controller) calmLocked() {
	if c.limitLocked() <= c.cfg.MinLimit {
		return
	}
	c.pressureRun = 0
	c.calmRun++
	if c.calmRun >= c.cfg.BrownoutLowerAfter && c.level > LevelFull {
		c.setLevelLocked(c.level - 1)
		c.calmRun = 0
	}
}

func (c *Controller) setLevelLocked(to Level) {
	from := c.level
	c.level = to
	c.transitions++
	if c.onTransition != nil {
		c.onTransition(from, to)
	}
}

func (c *Controller) limitLocked() int {
	l := int(c.limit)
	if l < c.cfg.MinLimit {
		l = c.cfg.MinLimit
	}
	return l
}

// Level returns the current brownout rung.
func (c *Controller) Level() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Limit returns the current concurrency limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limitLocked()
}

// Snapshot returns a copy of the controller's state and counters.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Limit:       c.limitLocked(),
		Inflight:    c.inflight,
		Admitted:    c.admitted,
		Shed:        c.shed,
		InDeadline:  c.inDeadline,
		Late:        c.late,
		Overflows:   c.overflows,
		Backoffs:    c.backoffs,
		Level:       c.level,
		Transitions: c.transitions,
		AtFloor:     c.limitLocked() <= c.cfg.MinLimit,
	}
}
