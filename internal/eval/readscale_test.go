package eval

import (
	"testing"
	"time"
)

// TestReadScaleSmoke runs a miniature E24 sweep end to end: both
// configurations must produce throughput at every point, the headline
// speedup must be computed, and the warm lock-free path must not
// allocate.
func TestReadScaleSmoke(t *testing.T) {
	rep, err := RunReadScale(ReadScaleConfig{
		Entries:       512,
		Queries:       64,
		Readers:       []int{1, 2},
		PointDuration: 15 * time.Millisecond,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.LockFreeOps <= 0 || pt.LockedOps <= 0 {
			t.Errorf("readers=%d: non-positive throughput: %+v", pt.Readers, pt)
		}
		if pt.Speedup <= 0 {
			t.Errorf("readers=%d: speedup not computed: %+v", pt.Readers, pt)
		}
		if pt.LockFreeP99Micros <= 0 || pt.LockedP99Micros <= 0 {
			t.Errorf("readers=%d: p99 not sampled: %+v", pt.Readers, pt)
		}
	}
	if rep.SpeedupAt16 <= 0 {
		t.Errorf("headline speedup not computed: %v", rep.SpeedupAt16)
	}
	if rep.MaxProcs < 1 {
		t.Errorf("MaxProcs not recorded: %d", rep.MaxProcs)
	}
	if rep.AllocsPerOp != 0 {
		t.Errorf("warm lock-free lookup allocates: %v allocs/op", rep.AllocsPerOp)
	}
}

// TestE24Report asserts the experiment renders a complete table at
// small scale.
func TestE24Report(t *testing.T) {
	scale := SmallScale()
	rep, err := E24ReadScale(scale)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E24" {
		t.Fatalf("ID = %q", rep.ID)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (readers 1,4,16)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Headers) {
			t.Fatalf("row width %d != header width %d", len(row), len(rep.Headers))
		}
	}
	if len(rep.Notes) == 0 {
		t.Fatal("no notes")
	}
}
