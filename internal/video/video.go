// Package video provides the video-stream substrate: a synthetic,
// scene-structured frame stream generator and the frame-difference gate
// that exploits the temporal locality inherent in video.
//
// Scene structure is driven by the device's motion regime: while the
// device is stationary or handheld the camera keeps seeing the same
// scene (same class); while walking or panning the scene changes every
// few frames. Every frame carries ground truth (class and scene id), so
// reuse correctness is measurable exactly.
package video

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"approxcache/internal/imu"
	"approxcache/internal/vision"
)

// Frame is one generated video frame with ground truth.
type Frame struct {
	// Index is the frame number within the stream.
	Index int
	// Offset is the frame time relative to stream start.
	Offset time.Duration
	// Image is the rendered frame.
	Image *vision.Image
	// Class is the true object class shown.
	Class int
	// Scene is a monotonically increasing scene-segment id; frames
	// with equal Scene show the same physical scene.
	Scene int
	// Regime is the device motion regime during this frame.
	Regime imu.Regime
}

// Segment is a contiguous stretch of a workload in one motion regime.
type Segment struct {
	// Regime is the motion regime of the segment.
	Regime imu.Regime
	// Frames is the segment length in frames.
	Frames int
}

// StreamConfig parameterizes a synthetic stream.
type StreamConfig struct {
	// FPS is the frame rate. Typical mobile recognition apps sample
	// 10–30 fps.
	FPS int
	// Segments is the motion-regime script.
	Segments []Segment
	// Perturb is the per-frame perturbation applied within a scene.
	Perturb vision.Perturbation
	// SceneHold overrides how many frames a scene lasts in
	// non-stable regimes. Zero selects per-regime defaults
	// (walking 15, panning 8).
	SceneHold int
	// ClassWeights biases which class each new scene shows. Empty
	// means uniform; otherwise it must have one non-negative weight
	// per class with a positive sum. Skewed weights model popular
	// objects (the exhibits everyone photographs), which is what makes
	// peer-to-peer reuse pay off.
	ClassWeights []float64
	// Seed drives all randomness.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c StreamConfig) Validate() error {
	if c.FPS <= 0 {
		return fmt.Errorf("video: fps must be positive, got %d", c.FPS)
	}
	if len(c.Segments) == 0 {
		return fmt.Errorf("video: stream needs at least one segment")
	}
	for i, s := range c.Segments {
		if s.Frames <= 0 {
			return fmt.Errorf("video: segment %d has non-positive length %d", i, s.Frames)
		}
		switch s.Regime {
		case imu.Stationary, imu.Handheld, imu.Walking, imu.Panning:
		default:
			return fmt.Errorf("video: segment %d has unknown regime %d", i, int(s.Regime))
		}
	}
	if c.SceneHold < 0 {
		return fmt.Errorf("video: scene hold must be non-negative, got %d", c.SceneHold)
	}
	if len(c.ClassWeights) > 0 {
		var sum float64
		for i, w := range c.ClassWeights {
			if w < 0 {
				return fmt.Errorf("video: class weight %d is negative", i)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("video: class weights sum to zero")
		}
	}
	return nil
}

// sceneHold returns how many frames a scene persists in regime r.
func (c StreamConfig) sceneHold(r imu.Regime) int {
	if c.SceneHold > 0 {
		return c.SceneHold
	}
	switch r {
	case imu.Walking:
		return 15
	case imu.Panning:
		return 8
	default:
		return 1 << 30 // scene-stable regimes hold for the segment
	}
}

// Generate renders the stream described by cfg over classes.
func Generate(cfg StreamConfig, classes *vision.ClassSet) ([]Frame, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if classes == nil {
		return nil, fmt.Errorf("video: nil class set")
	}
	if len(cfg.ClassWeights) > 0 && len(cfg.ClassWeights) != classes.NumClasses() {
		return nil, fmt.Errorf("video: %d class weights for %d classes",
			len(cfg.ClassWeights), classes.NumClasses())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	frameDur := time.Second / time.Duration(cfg.FPS)

	var (
		out       []Frame
		index     int
		scene     = -1
		class     int
		heldSince int
	)
	newScene := func() {
		scene++
		heldSince = index
		// Draw a new class, avoiding an immediate repeat when
		// possible so scene changes are visible.
		if classes.NumClasses() > 1 {
			class = pickClass(rng, cfg.ClassWeights, classes.NumClasses(), class)
		} else {
			class = 0
		}
	}
	newScene()
	for _, seg := range cfg.Segments {
		hold := cfg.sceneHold(seg.Regime)
		// Entering a non-stable segment means the camera starts
		// moving: the scene changes at segment boundaries too.
		if !seg.Regime.SceneStable() {
			newScene()
		}
		for f := 0; f < seg.Frames; f++ {
			if index-heldSince >= hold {
				newScene()
			}
			im, err := classes.Render(class, cfg.Perturb, rng)
			if err != nil {
				return nil, fmt.Errorf("render frame %d: %w", index, err)
			}
			out = append(out, Frame{
				Index:  index,
				Offset: time.Duration(index) * frameDur,
				Image:  im,
				Class:  class,
				Scene:  scene,
				Regime: seg.Regime,
			})
			index++
		}
	}
	return out, nil
}

// pickClass draws the next scene's class, excluding the previous one.
// With weights it samples the renormalized weighted distribution;
// without, it samples uniformly.
func pickClass(rng *rand.Rand, weights []float64, numClasses, exclude int) int {
	if len(weights) == 0 {
		next := rng.Intn(numClasses - 1)
		if next >= exclude {
			next++
		}
		return next
	}
	var sum float64
	for c, w := range weights {
		if c != exclude {
			sum += w
		}
	}
	if sum <= 0 {
		// All remaining mass sits on the excluded class; fall back to
		// uniform over the rest.
		next := rng.Intn(numClasses - 1)
		if next >= exclude {
			next++
		}
		return next
	}
	r := rng.Float64() * sum
	for c, w := range weights {
		if c == exclude {
			continue
		}
		r -= w
		if r <= 0 {
			return c
		}
	}
	// Rounding fell off the end: return the last non-excluded class.
	if exclude == numClasses-1 {
		return numClasses - 2
	}
	return numClasses - 1
}

// ZipfWeights returns numClasses weights with weight(rank k) ∝ 1/k^s.
// s = 0 is uniform; s around 1 gives the heavy skew typical of
// popularity distributions.
func ZipfWeights(numClasses int, s float64) []float64 {
	if numClasses <= 0 {
		return nil
	}
	out := make([]float64, numClasses)
	for k := range out {
		out[k] = 1 / math.Pow(float64(k+1), s)
	}
	return out
}

// DiffGateConfig tunes the frame-difference gate.
type DiffGateConfig struct {
	// Threshold is the maximum mean absolute pixel difference (in
	// [0,1]) against the keyframe for which frames count as "same
	// scene".
	Threshold float64
}

// Validate reports whether the configuration is usable.
func (c DiffGateConfig) Validate() error {
	if c.Threshold <= 0 || c.Threshold >= 1 {
		return fmt.Errorf("video: diff threshold must be in (0,1), got %v", c.Threshold)
	}
	return nil
}

// DefaultDiffGateConfig returns the threshold tuned to the default
// perturbation profile: same-scene jitter passes, scene changes fail.
func DefaultDiffGateConfig() DiffGateConfig {
	return DiffGateConfig{Threshold: 0.13}
}

// DiffGate tracks the last recognized keyframe and answers "is this
// frame close enough to reuse the keyframe's result?". DiffGate is not
// safe for concurrent use; each device pipeline owns one.
type DiffGate struct {
	cfg DiffGateConfig
	key *vision.Image
}

// NewDiffGate builds a gate with cfg.
func NewDiffGate(cfg DiffGateConfig) (*DiffGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DiffGate{cfg: cfg}, nil
}

// Similar reports whether im is within threshold of the current
// keyframe, along with the measured difference. With no keyframe set it
// reports false and a difference of 1.
func (g *DiffGate) Similar(im *vision.Image) (bool, float64) {
	if g.key == nil || im == nil {
		return false, 1
	}
	d := vision.MeanAbsDiff(g.key, im)
	return d <= g.cfg.Threshold, d
}

// SetKey installs im as the new keyframe. The pipeline calls SetKey
// whenever a fresh (non-gate) recognition result is produced.
func (g *DiffGate) SetKey(im *vision.Image) {
	if im == nil {
		g.key = nil
		return
	}
	g.key = im.Clone()
}

// HasKey reports whether a keyframe is installed.
func (g *DiffGate) HasKey() bool { return g.key != nil }

// Reset clears the keyframe.
func (g *DiffGate) Reset() { g.key = nil }

// Keyframe is one remembered scene anchor with its recognition result.
type Keyframe struct {
	// Image is the anchor frame.
	Image *vision.Image
	// Label is the recognition result the anchor carries.
	Label string
	// Confidence is the result's confidence.
	Confidence float64
}

// KeyframeLibrary extends the single-keyframe gate to remember the last
// Capacity recognized scenes. A camera panning back to a recently seen
// scene then matches its old keyframe directly — without feature
// extraction or inference — which the single-keyframe gate cannot do.
// KeyframeLibrary is not safe for concurrent use; each pipeline owns
// one.
type KeyframeLibrary struct {
	cfg DiffGateConfig
	// base keeps the configured threshold so SetStrictness scales from
	// the original value, not compounding on itself.
	base   DiffGateConfig
	cap    int
	frames []Keyframe // newest last
}

// NewKeyframeLibrary builds a library of at most capacity keyframes
// matched under cfg's threshold.
func NewKeyframeLibrary(cfg DiffGateConfig, capacity int) (*KeyframeLibrary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("video: keyframe capacity must be positive, got %d", capacity)
	}
	return &KeyframeLibrary{cfg: cfg, base: cfg, cap: capacity}, nil
}

// SetStrictness scales the match threshold to scale× its configured
// value: 1 restores the configured gate, smaller values demand frames
// be more alike before a keyframe's result may be reused. Scales
// outside (0, 1] are ignored. Like every library method, the caller
// synchronizes.
func (l *KeyframeLibrary) SetStrictness(scale float64) {
	if scale <= 0 || scale > 1 {
		return
	}
	l.cfg.Threshold = l.base.Threshold * scale
}

// Len returns the number of stored keyframes.
func (l *KeyframeLibrary) Len() int { return len(l.frames) }

// Match returns the best-matching stored keyframe for im (smallest mean
// absolute difference under the threshold) and whether one qualified.
func (l *KeyframeLibrary) Match(im *vision.Image) (Keyframe, bool) {
	if im == nil {
		return Keyframe{}, false
	}
	best := -1
	bestDiff := l.cfg.Threshold
	for i, kf := range l.frames {
		d := vision.MeanAbsDiff(kf.Image, im)
		if d <= bestDiff {
			best = i
			bestDiff = d
		}
	}
	if best < 0 {
		return Keyframe{}, false
	}
	return l.frames[best], true
}

// Push remembers im with its recognition result, evicting the oldest
// keyframe when full. Any stored keyframe within the match threshold of
// im is displaced — it depicts the same visual scene, and the incoming
// result is fresher evidence. (Keeping a same-scene keyframe with a
// different label would let a stale recognition keep winning matches.)
func (l *KeyframeLibrary) Push(im *vision.Image, label string, confidence float64) {
	if im == nil || label == "" {
		return
	}
	kept := l.frames[:0]
	for _, kf := range l.frames {
		if vision.MeanAbsDiff(kf.Image, im) > l.cfg.Threshold {
			kept = append(kept, kf)
		}
	}
	l.frames = append(kept, Keyframe{Image: im.Clone(), Label: label, Confidence: confidence})
	if len(l.frames) > l.cap {
		l.frames = l.frames[len(l.frames)-l.cap:]
	}
}

// Reset clears the library.
func (l *KeyframeLibrary) Reset() { l.frames = nil }
