package cachestore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"approxcache/internal/feature"
	"approxcache/internal/lsh"
	"approxcache/internal/simclock"
)

func newTestStore(t *testing.T, cfg Config) (*Store, *simclock.Virtual) {
	t.Helper()
	idx, err := lsh.NewExact(2)
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.NewVirtual(time.Unix(0, 0))
	s, err := New(cfg, idx, clk)
	if err != nil {
		t.Fatal(err)
	}
	return s, clk
}

func vec(x, y float64) feature.Vector { return feature.Vector{x, y} }

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Capacity: 4}, true},
		{"valid policy", Config{Capacity: 4, Policy: CostAware}, true},
		{"zero capacity", Config{}, false},
		{"negative capacity", Config{Capacity: -1}, false},
		{"bad policy", Config{Capacity: 4, Policy: Policy(42)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	idx, err := lsh.NewExact(2)
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.NewVirtual(time.Unix(0, 0))
	if _, err := New(Config{Capacity: 0}, idx, clk); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := New(Config{Capacity: 1}, nil, clk); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := New(Config{Capacity: 1}, idx, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 4})
	if _, err := s.Insert(nil, "cat", 1, "dnn", time.Millisecond); err == nil {
		t.Fatal("empty vector accepted")
	}
	if _, err := s.Insert(vec(1, 0), "", 1, "dnn", time.Millisecond); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestInsertGetTouch(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 4})
	id, err := s.Insert(vec(1, 0), "cat", 0.9, "dnn", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get(id)
	if !ok {
		t.Fatal("entry missing")
	}
	if e.Label != "cat" || e.Confidence != 0.9 || e.Source != "dnn" || e.Hits != 0 {
		t.Fatalf("entry = %+v", e)
	}
	clk.Advance(time.Second)
	s.Touch(id)
	e, _ = s.Get(id)
	if e.Hits != 1 || !e.LastAccess.After(e.InsertedAt) {
		t.Fatalf("touch not recorded: %+v", e)
	}
	if _, ok := s.Get(999); ok {
		t.Fatal("absent id found")
	}
	s.Touch(999) // no-op
}

func TestGetReturnsSnapshot(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 4})
	id, err := s.Insert(vec(1, 0), "cat", 0.9, "dnn", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s.Get(id)
	e.Label = "dog"
	e.Vec[0] = 99
	e2, _ := s.Get(id)
	if e2.Label != "cat" || e2.Vec[0] != 1 {
		t.Fatal("Get exposes internal state")
	}
}

func TestLabelCallback(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 4})
	id, err := s.Insert(vec(1, 0), "cat", 0.9, "dnn", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := s.Label(id)
	if !ok || l != "cat" {
		t.Fatalf("Label = %q, %v", l, ok)
	}
	if _, ok := s.Label(12345); ok {
		t.Fatal("absent label resolved")
	}
}

func TestLRUEviction(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 2, Policy: LRU})
	id1, _ := s.Insert(vec(1, 0), "a", 1, "dnn", time.Millisecond)
	clk.Advance(time.Second)
	id2, _ := s.Insert(vec(0, 1), "b", 1, "dnn", time.Millisecond)
	clk.Advance(time.Second)
	s.Touch(id1) // id1 now more recent than id2
	clk.Advance(time.Second)
	if _, err := s.Insert(vec(1, 1), "c", 1, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id2); ok {
		t.Fatal("LRU should have evicted id2")
	}
	if _, ok := s.Get(id1); !ok {
		t.Fatal("recently used id1 evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d", s.Evictions())
	}
}

func TestLFUEviction(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 2, Policy: LFU})
	id1, _ := s.Insert(vec(1, 0), "a", 1, "dnn", time.Millisecond)
	id2, _ := s.Insert(vec(0, 1), "b", 1, "dnn", time.Millisecond)
	for i := 0; i < 3; i++ {
		s.Touch(id1)
		clk.Advance(time.Millisecond)
	}
	s.Touch(id2) // id2 used once, id1 three times; id2 is more recent
	clk.Advance(time.Millisecond)
	if _, err := s.Insert(vec(1, 1), "c", 1, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id2); ok {
		t.Fatal("LFU should evict least-frequently-used id2")
	}
	if _, ok := s.Get(id1); !ok {
		t.Fatal("frequently used id1 evicted")
	}
}

func TestCostAwareEviction(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 2, Policy: CostAware})
	// Cheap entry is recent, expensive entry is old: cost-aware must
	// evict the cheap one (LRU would evict the expensive one).
	expensive, _ := s.Insert(vec(1, 0), "a", 1, "dnn", 500*time.Millisecond)
	clk.Advance(time.Second)
	cheap, _ := s.Insert(vec(0, 1), "b", 1, "dnn", 1*time.Millisecond)
	clk.Advance(time.Second)
	if _, err := s.Insert(vec(1, 1), "c", 1, "dnn", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(cheap); ok {
		t.Fatal("cost-aware should evict the cheap entry")
	}
	if _, ok := s.Get(expensive); !ok {
		t.Fatal("expensive entry evicted")
	}
}

func TestTTLExpiry(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 4, TTL: time.Second})
	id, _ := s.Insert(vec(1, 0), "a", 1, "dnn", time.Millisecond)
	if _, ok := s.Get(id); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(2 * time.Second)
	if _, ok := s.Get(id); ok {
		t.Fatal("expired entry still visible")
	}
	// Nearest must also not return expired entries.
	ns, err := s.Nearest(vec(1, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatalf("expired entry returned by Nearest: %+v", ns)
	}
	if s.Expiries() == 0 {
		t.Fatal("expiry not counted")
	}
}

func TestNearestOrdersByDistance(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 8})
	far, _ := s.Insert(vec(5, 5), "far", 1, "dnn", time.Millisecond)
	near, _ := s.Insert(vec(1, 0), "near", 1, "dnn", time.Millisecond)
	ns, err := s.Nearest(vec(1, 0.1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].ID != near || ns[1].ID != far {
		t.Fatalf("nearest = %+v", ns)
	}
}

func TestRemove(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 4})
	id, _ := s.Insert(vec(1, 0), "a", 1, "dnn", time.Millisecond)
	s.Remove(id)
	if _, ok := s.Get(id); ok {
		t.Fatal("removed entry visible")
	}
	s.Remove(id) // double remove is a no-op
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSnapshot(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 4})
	if _, err := s.Insert(vec(1, 0), "a", 1, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(vec(0, 1), "b", 1, "peer", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	snap[0].Label = "mutated"
	for _, e := range s.Snapshot() {
		if e.Label == "mutated" {
			t.Fatal("snapshot aliases store")
		}
	}
}

func TestStats(t *testing.T) {
	s, clk := newTestStore(t, Config{Capacity: 2, TTL: 10 * time.Second})
	st := s.Stats()
	if st.Entries != 0 || st.TotalHits != 0 || len(st.BySource) != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	id1, _ := s.Insert(vec(1, 0), "a", 1, "dnn", 100*time.Millisecond)
	if _, err := s.Insert(vec(0, 1), "b", 1, "peer", 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Touch(id1)
	s.Touch(id1)
	st = s.Stats()
	if st.Entries != 2 || st.BySource["dnn"] != 1 || st.BySource["peer"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalHits != 2 || st.SavedTotal != 200*time.Millisecond {
		t.Fatalf("hit accounting = %+v", st)
	}
	// Eviction and expiry counts flow through.
	if _, err := s.Insert(vec(1, 1), "c", 1, "dnn", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	clk.Advance(time.Minute)
	if st := s.Stats(); st.Entries != 0 || st.Expiries == 0 {
		t.Fatalf("post-expiry stats = %+v", st)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || CostAware.String() != "cost-aware" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatalf("unknown = %q", Policy(9).String())
	}
}

// Property: the store never exceeds capacity, no matter the insert/use
// pattern, and evictions+len accounting stays consistent.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		idx, err := lsh.NewExact(2)
		if err != nil {
			return false
		}
		clk := simclock.NewVirtual(time.Unix(0, 0))
		s, err := New(Config{Capacity: 3, Policy: CostAware}, idx, clk)
		if err != nil {
			return false
		}
		inserted := 0
		for i, op := range ops {
			clk.Advance(time.Millisecond)
			switch op % 3 {
			case 0, 1:
				_, err := s.Insert(vec(float64(i), float64(op)), fmt.Sprintf("l%d", op%5), 1, "dnn",
					time.Duration(op)*time.Millisecond)
				if err != nil {
					return false
				}
				inserted++
			case 2:
				s.Touch(lsh.ID(op))
			}
			if s.Len() > 3 {
				return false
			}
		}
		return s.Len()+s.Evictions() == inserted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := newTestStore(t, Config{Capacity: 16})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			id, err := s.Insert(vec(float64(i%7), 1), "x", 1, "dnn", time.Millisecond)
			if err != nil {
				t.Error(err)
				return
			}
			s.Touch(id)
		}
	}()
	for i := 0; i < 300; i++ {
		if _, err := s.Nearest(vec(1, 1), 3); err != nil {
			t.Fatal(err)
		}
		s.Snapshot()
	}
	<-done
}
