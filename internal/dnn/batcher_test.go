package dnn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"approxcache/internal/vision"
)

func batchImages(t *testing.T, cs *vision.ClassSet, n int) []*vision.Image {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	out := make([]*vision.Image, n)
	for i := range out {
		im, err := cs.Render(i%cs.NumClasses(), vision.DefaultPerturbation(), rng)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = im
	}
	return out
}

func TestBatchLatencyModel(t *testing.T) {
	p := MobileNetV2
	if got := BatchLatency(p, 1); got != p.MeanLatency {
		t.Fatalf("BatchLatency(1) = %v, want %v", got, p.MeanLatency)
	}
	if got := BatchLatency(p, 0); got != 0 {
		t.Fatalf("BatchLatency(0) = %v, want 0", got)
	}
	// A batch of 8 must cost far less than 8 separate frames but more
	// than one.
	b8 := BatchLatency(p, 8)
	if b8 <= p.MeanLatency || b8 >= 8*p.MeanLatency/2 {
		t.Fatalf("BatchLatency(8) = %v out of range", b8)
	}
	perFrame := b8 / 8
	speedup := float64(p.MeanLatency) / float64(perFrame)
	if speedup < 3 {
		t.Fatalf("per-frame amortization %.2fx, want >= 3x", speedup)
	}
}

// TestInferBatchMatchesInferDecisions: batched inference makes the
// same feature-space decision per frame as single-frame inference
// (label noise aside), at amortized per-frame cost.
func TestInferBatchMatchesInferDecisions(t *testing.T) {
	cs := testClasses(t)
	// Top1Accuracy 1.0 disables label noise so decisions are
	// deterministic and comparable.
	profile := MobileNetV2
	profile.Top1Accuracy = 1.0
	a, err := NewClassifier(profile, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClassifier(profile, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	ims := batchImages(t, cs, 8)
	batched, err := a.InferBatch(ims)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(ims) {
		t.Fatalf("got %d results for %d frames", len(batched), len(ims))
	}
	for i, im := range ims {
		single, err := b.Infer(im)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i].Label != single.Label {
			t.Fatalf("frame %d: batch label %q, single %q", i, batched[i].Label, single.Label)
		}
		if batched[i].Latency >= single.Latency {
			t.Fatalf("frame %d: batched latency %v not cheaper than single %v",
				i, batched[i].Latency, single.Latency)
		}
		if batched[i].EnergyMJ >= single.EnergyMJ {
			t.Fatalf("frame %d: batched energy %v not cheaper than single %v",
				i, batched[i].EnergyMJ, single.EnergyMJ)
		}
	}
	if _, err := a.InferBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := a.InferBatch([]*vision.Image{nil}); err == nil {
		t.Fatal("nil image in batch: want error")
	}
}

func TestBatcherConfigValidate(t *testing.T) {
	if err := DefaultBatcherConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (BatcherConfig{MaxBatch: 0, MaxWait: time.Millisecond}).Validate(); err == nil {
		t.Fatal("want error for MaxBatch 0")
	}
	if err := (BatcherConfig{MaxBatch: 8}).Validate(); err == nil {
		t.Fatal("want error for MaxWait 0")
	}
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatcher(BatcherConfig{}, c); err == nil {
		t.Fatal("want error for invalid config")
	}
	if _, err := NewBatcher(DefaultBatcherConfig(), nil); err == nil {
		t.Fatal("want error for nil classifier")
	}
}

// TestBatcherFullFlush: MaxBatch concurrent callers form exactly one
// full batch.
func TestBatcherFullFlush(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A long MaxWait proves the flush came from the size bound.
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: 10 * time.Second}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ims := batchImages(t, cs, 4)
	var wg sync.WaitGroup
	for _, im := range ims {
		wg.Add(1)
		go func(im *vision.Image) {
			defer wg.Done()
			if _, err := b.Infer(im); err != nil {
				t.Error(err)
			}
		}(im)
	}
	wg.Wait()
	st := b.Stats()
	if st.Batches != 1 || st.Frames != 4 || st.FullFlushes != 1 || st.DeadlineFlushes != 0 {
		t.Fatalf("stats = %+v, want one full batch of 4", st)
	}
	if st.AvgSize() != 4 {
		t.Fatalf("AvgSize = %v, want 4", st.AvgSize())
	}
}

// TestBatcherDeadlineFlush: a lone caller is released by the MaxWait
// timer, not stuck waiting for a full batch.
func TestBatcherDeadlineFlush(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	im := batchImages(t, cs, 1)[0]
	done := make(chan error, 1)
	go func() {
		_, err := b.Infer(im)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone caller never released")
	}
	st := b.Stats()
	if st.DeadlineFlushes != 1 || st.Batches != 1 || st.Frames != 1 {
		t.Fatalf("stats = %+v, want one deadline batch of 1", st)
	}
}

// TestBatcherCloseDrains: Close flushes pending work and later calls
// fall through unbatched.
func TestBatcherCloseDrains(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 8, MaxWait: 10 * time.Second}, c)
	if err != nil {
		t.Fatal(err)
	}
	im := batchImages(t, cs, 1)[0]
	done := make(chan error, 1)
	go func() {
		_, err := b.Infer(im)
		done <- err
	}()
	// Wait for the call to be queued, then close.
	for {
		b.mu.Lock()
		queued := len(b.pending) == 1
		b.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Post-close calls still work (unbatched passthrough).
	if _, err := b.Infer(im); err != nil {
		t.Fatal(err)
	}
	b.Close() // double-close is a no-op
	if got := b.Stats().Batches; got != 1 {
		t.Fatalf("Batches = %d, want 1 (post-close calls bypass batching)", got)
	}
}

// TestBatcherConcurrentStress: many goroutines through a small batcher
// under -race; every caller gets a result.
func TestBatcherConcurrentStress(t *testing.T) {
	cs := testClasses(t)
	c, err := NewClassifier(MobileNetV2, cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ims := batchImages(t, cs, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				inf, err := b.Infer(ims[(w+i)%len(ims)])
				if err != nil {
					t.Error(err)
					return
				}
				if inf.Label == "" {
					t.Error("empty label")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Frames != 160 {
		t.Fatalf("Frames = %d, want 160", st.Frames)
	}
	if st.Batches == 0 || st.SizeSum != st.Frames {
		t.Fatalf("inconsistent stats %+v", st)
	}
}
