package feature

import (
	"math"
	"math/rand"
	"testing"
)

func TestDequantizeIntoReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dim := range []int{1, 2, 17, 128} {
		v := make(Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		codes := make([]int8, dim)
		q := QuantizeInto(v, codes)
		// DequantizeInto takes the raw wire bytes, not []int8.
		raw := make([]byte, dim)
		for i, c := range codes {
			raw[i] = byte(c)
		}
		got := make(Vector, dim)
		DequantizeInto(got, raw, q.Scale, q.Offset)
		tol := q.Scale/2 + 1e-12
		for i := range v {
			if math.Abs(got[i]-v[i]) > tol {
				t.Fatalf("dim %d elem %d: got %v want %v (tol %v)", dim, i, got[i], v[i], tol)
			}
		}
	}
}

func TestDequantizeIntoConstantVector(t *testing.T) {
	v := Vector{2.5, 2.5, 2.5}
	codes := make([]int8, len(v))
	q := QuantizeInto(v, codes)
	got := make(Vector, len(v))
	DequantizeInto(got, []byte{byte(codes[0]), byte(codes[1]), byte(codes[2])}, q.Scale, q.Offset)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("constant vector not exact: %v", got)
		}
	}
}

func TestDequantizeIntoIgnoresExtraCodes(t *testing.T) {
	// dst length governs; trailing wire bytes must be ignored.
	dst := make(Vector, 2)
	DequantizeInto(dst, []byte{0, 127, 99}, 0.5, 1)
	if dst[0] != 1 || dst[1] != 1+0.5*127 {
		t.Fatalf("dst = %v", dst)
	}
}
